"""Tests for the Min-Max and Min-Sum optimization attacks."""

import numpy as np
import pytest

from repro.attacks import AttackContext, MinMaxAttack, MinSumAttack
from repro.attacks.minmax_minsum import (
    max_pairwise_sq_distance,
    max_sum_sq_distance,
)


@pytest.fixture
def context(rng):
    return AttackContext.make(num_clients=20, byzantine_indices=np.arange(4), rng=rng)


class TestDistanceHelpers:
    def test_max_pairwise_distance(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0], [1.0, 0.0]])
        assert max_pairwise_sq_distance(points) == pytest.approx(25.0)

    def test_max_sum_distance(self):
        points = np.array([[0.0], [1.0], [10.0]])
        sums = [1 + 100, 1 + 81, 100 + 81]
        assert max_sum_sq_distance(points) == pytest.approx(max(sums))


class TestMinMaxAttack:
    def test_constraint_satisfied(self, benign_gradients, context):
        """Eq. 14: max distance to any benign gradient <= benign diameter."""
        attack = MinMaxAttack()
        malicious = attack.malicious_gradient(benign_gradients, context)
        benign = benign_gradients[4:]
        max_benign = np.sqrt(max_pairwise_sq_distance(benign))
        max_to_malicious = np.max(np.linalg.norm(benign - malicious, axis=1))
        assert max_to_malicious <= max_benign * (1 + 1e-6)

    def test_gamma_is_maximized(self, benign_gradients, context):
        """A slightly larger gamma must violate the constraint."""
        attack = MinMaxAttack()
        benign = attack.benign_rows(benign_gradients, context)
        gamma = attack._optimize_gamma(benign)
        assert gamma > 0
        candidate = benign.mean(axis=0) + (gamma * 1.5) * attack._perturbation_vector(
            benign
        )
        assert not attack._constraint_satisfied(candidate, benign)

    def test_all_byzantine_rows_identical(self, benign_gradients, context):
        malicious = MinMaxAttack().craft(benign_gradients, context)
        for row in malicious[1:]:
            np.testing.assert_array_equal(row, malicious[0])

    def test_deviates_from_benign_mean(self, benign_gradients, context):
        malicious = MinMaxAttack().malicious_gradient(benign_gradients, context)
        benign_mean = benign_gradients[4:].mean(axis=0)
        assert np.linalg.norm(malicious - benign_mean) > 0.1


class TestMinSumAttack:
    def test_constraint_satisfied(self, benign_gradients, context):
        """Eq. 15: sum of squared distances <= max benign sum."""
        attack = MinSumAttack()
        malicious = attack.malicious_gradient(benign_gradients, context)
        benign = benign_gradients[4:]
        bound = max_sum_sq_distance(benign)
        total = np.sum(np.linalg.norm(benign - malicious, axis=1) ** 2)
        assert total <= bound * (1 + 1e-6)

    def test_minsum_is_more_conservative_than_minmax(self, benign_gradients, context):
        """Min-Sum's constraint is tighter, so its gamma is no larger."""
        minmax = MinMaxAttack()
        minsum = MinSumAttack()
        benign = minmax.benign_rows(benign_gradients, context)
        assert minsum._optimize_gamma(benign) <= minmax._optimize_gamma(benign) + 1e-6


class TestPerturbationOptions:
    @pytest.mark.parametrize("perturbation", ["std", "unit", "sign"])
    def test_all_perturbation_directions_work(
        self, benign_gradients, context, perturbation
    ):
        attack = MinMaxAttack(perturbation=perturbation)
        malicious = attack.craft(benign_gradients, context)
        assert malicious.shape == (4, benign_gradients.shape[1])
        assert np.all(np.isfinite(malicious))

    def test_unknown_perturbation_rejected(self):
        with pytest.raises(ValueError):
            MinMaxAttack(perturbation="rotate")

    def test_identical_benign_gradients_handled(self, context):
        identical = np.tile(np.ones(50), (20, 1))
        malicious = MinMaxAttack().craft(identical, context)
        assert np.all(np.isfinite(malicious))
