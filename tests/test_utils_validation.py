"""Tests for input validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_byzantine_count,
    check_fraction,
    check_gradient_matrix,
    check_integer_in_range,
    check_positive,
    check_probability_vector,
    check_same_dimension,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="x"):
            check_positive(0.0, "x")

    def test_accepts_zero_when_not_strict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive(float("inf"), "x")


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_inclusive(self, value):
        assert check_fraction(value, "f") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            check_fraction(value, "f")

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "f", inclusive=False)


class TestCheckGradientMatrix:
    def test_promotes_vector_to_matrix(self):
        out = check_gradient_matrix(np.ones(5))
        assert out.shape == (1, 5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_gradient_matrix(np.zeros((0, 3)))

    def test_rejects_nan(self):
        bad = np.ones((2, 3))
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            check_gradient_matrix(bad)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            check_gradient_matrix(np.ones((2, 3, 4)))

    def test_casts_to_float64(self):
        out = check_gradient_matrix(np.ones((2, 3), dtype=np.float32))
        assert out.dtype == np.float64


class TestCheckProbabilityVector:
    def test_accepts_valid(self):
        probs = check_probability_vector(np.array([0.25, 0.75]))
        assert probs.sum() == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.array([-0.1, 1.1]))

    def test_rejects_not_summing_to_one(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.array([0.2, 0.2]))


class TestCheckByzantineCount:
    def test_accepts_minority(self):
        assert check_byzantine_count(10, 50) == 10

    def test_rejects_majority(self):
        with pytest.raises(ValueError, match="minority"):
            check_byzantine_count(25, 50)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_byzantine_count(-1, 50)


class TestMisc:
    def test_same_dimension_ok(self):
        check_same_dimension(np.ones((3, 4)), np.ones(4))

    def test_same_dimension_mismatch(self):
        with pytest.raises(ValueError):
            check_same_dimension(np.ones((3, 4)), np.ones(5))

    def test_integer_in_range(self):
        assert check_integer_in_range(3, "k", minimum=1, maximum=5) == 3

    def test_integer_below_minimum(self):
        with pytest.raises(ValueError):
            check_integer_in_range(0, "k", minimum=1)

    def test_integer_above_maximum(self):
        with pytest.raises(ValueError):
            check_integer_in_range(9, "k", maximum=5)
