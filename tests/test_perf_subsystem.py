"""Tests for the repro.perf benchmarking/profiling subsystem."""

import json
import time

import numpy as np
import pytest

from repro.perf import (
    BenchResult,
    NullProfiler,
    RoundProfiler,
    StageTimings,
    Timer,
    monotonic,
    read_bench_json,
    run_benchmark,
    speedup,
    write_bench_json,
)


class TestTimer:
    def test_monotonic_increases(self):
        a = monotonic()
        b = monotonic()
        assert b >= a

    def test_context_manager(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005
        assert not timer.running

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()


class TestStageTimings:
    def test_accumulates_and_summarizes(self):
        timings = StageTimings()
        timings.add("a", 1.0)
        timings.add("a", 3.0)
        timings.add("b", 0.5)
        summary = timings.summary()
        assert summary["a"]["count"] == 2
        assert summary["a"]["mean_s"] == pytest.approx(2.0)
        assert summary["a"]["min_s"] == 1.0
        assert summary["a"]["max_s"] == 3.0
        assert timings.total("b") == 0.5
        assert len(timings) == 3

    def test_merge(self):
        a, b = StageTimings(), StageTimings()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.summary()["x"]["count"] == 2
        assert "y" in a.summary()


class TestRoundProfiler:
    def test_records_stages_and_rounds(self):
        profiler = RoundProfiler()
        for round_index in range(3):
            profiler.begin_round(round_index)
            with profiler.stage("work"):
                pass
            profiler.end_round()
        assert profiler.num_rounds == 3
        assert profiler.summary()["work"]["count"] == 3
        assert profiler.summary()["round_total"]["count"] == 3
        payload = profiler.to_dict()
        assert payload["num_rounds"] == 3
        assert payload["rounds"][0]["round_index"] == 0

    def test_stage_records_on_exception(self):
        profiler = RoundProfiler()
        with pytest.raises(ValueError):
            with profiler.stage("explodes"):
                raise ValueError("boom")
        assert profiler.summary()["explodes"]["count"] == 1

    def test_reset(self):
        profiler = RoundProfiler()
        with profiler.stage("x"):
            pass
        profiler.reset()
        assert profiler.summary() == {}

    def test_null_profiler_is_inert(self):
        profiler = NullProfiler()
        with profiler.stage("anything"):
            pass
        profiler.begin_round()
        profiler.end_round()
        assert not profiler.enabled


class TestBenchRunner:
    def test_run_benchmark(self):
        calls = []
        result = run_benchmark(lambda: calls.append(1), repeats=3, warmup=2, name="x")
        assert len(calls) == 5
        assert result.repeats == 3
        assert result.best_s <= result.mean_s

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            run_benchmark(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            run_benchmark(lambda: None, warmup=-1)

    def test_speedup(self):
        slow = BenchResult(name="slow", repeats=1, best_s=2.0, mean_s=2.0, total_s=2.0)
        fast = BenchResult(name="fast", repeats=1, best_s=0.5, mean_s=0.5, total_s=0.5)
        assert speedup(slow, fast) == pytest.approx(4.0)

    def test_write_and_read_json(self, tmp_path):
        result = run_benchmark(lambda: None, repeats=1, name="noop", extra={"n": 3})
        path = write_bench_json(
            tmp_path / "BENCH_test.json", [result], metadata={"suite": "unit"}
        )
        payload = read_bench_json(path)
        assert payload["schema"] == "repro.perf/bench-v1"
        assert payload["metadata"]["suite"] == "unit"
        assert payload["results"][0]["name"] == "noop"
        extra = payload["results"][0]["extra"]
        assert extra["n"] == 3
        # Every row records the process peak RSS (deployment-planning
        # context, stamped by run_benchmark itself).
        assert extra["peak_rss_bytes"] > 0
        # File is valid JSON with a trailing newline (checked-in artifact).
        text = path.read_text()
        assert text.endswith("\n")
        json.loads(text)


class TestProfilerIntegration:
    def test_experiment_records_all_stages(self):
        from repro import DataConfig, DefenseConfig, ExperimentConfig, TrainingConfig
        from repro.fl.experiment import run_experiment

        profiler = RoundProfiler()
        config = ExperimentConfig(
            num_clients=5,
            seed=0,
            data=DataConfig(dataset="mnist_like", num_train=60, num_test=30),
            training=TrainingConfig(model="logistic", rounds=2, batch_size=8),
            defense=DefenseConfig(name="signguard"),
        )
        run_experiment(config, profiler=profiler)
        summary = profiler.summary()
        for stage in ("collect_gradients", "attack", "aggregate", "model_update",
                      "round_total"):
            assert summary[stage]["count"] == 2, stage

    def test_float32_round_buffer(self):
        from repro import DataConfig, DefenseConfig, ExperimentConfig, TrainingConfig
        from repro.fl.experiment import run_experiment

        config = ExperimentConfig(
            num_clients=5,
            seed=0,
            data=DataConfig(dataset="mnist_like", num_train=60, num_test=30),
            training=TrainingConfig(
                model="logistic", rounds=2, batch_size=8, dtype="float32"
            ),
            defense=DefenseConfig(name="signguard"),
        )
        recorder = run_experiment(config)
        assert len(recorder.rounds) == 2

    def test_attack_stage_preserves_float32(self, rng):
        """The attack entry point must not upcast the float32 round buffer
        back to float64 (that would silently disable the reduced-precision
        path for every real experiment)."""
        from repro.attacks.base import AttackContext
        from repro.attacks.simple import NoAttack, SignFlipAttack

        honest = rng.normal(size=(6, 20)).astype(np.float32)
        context = AttackContext.make(num_clients=6, byzantine_indices=[0, 1], rng=0)
        for attack in (NoAttack(), SignFlipAttack()):
            assert attack.apply(honest, context).dtype == np.float32

    def test_simulation_rejects_bad_dtype(self, tiny_image_dataset):
        from repro.aggregators.mean import MeanAggregator
        from repro.attacks.simple import NoAttack
        from repro.fl.server import FederatedServer
        from repro.fl.simulation import FederatedSimulation, build_clients
        from repro.nn.models.factory import build_model

        model = build_model(
            "logistic", tiny_image_dataset.spec, rng=np.random.default_rng(0)
        )
        clients = build_clients(
            tiny_image_dataset, [np.arange(30), np.arange(30, 60)], []
        )
        server = FederatedServer(model, MeanAggregator())
        with pytest.raises(ValueError, match="dtype"):
            FederatedSimulation(
                server, clients, NoAttack(), tiny_image_dataset, dtype="int32"
            )
