"""Tests for the federated simulation loop and client construction."""

import numpy as np
import pytest

from repro.aggregators import MeanAggregator
from repro.attacks import NoAttack, SignFlipAttack
from repro.core import SignGuard
from repro.data.partition import iid_partition
from repro.data.synthetic_images import make_mnist_like
from repro.fl.server import FederatedServer
from repro.fl.simulation import FederatedSimulation, build_clients
from repro.nn.models import build_model
from repro.utils.rng import RngFactory


@pytest.fixture(scope="module")
def split():
    return make_mnist_like(num_train=300, num_test=80, rng=0)


def make_simulation(
    split, attack, aggregator, num_clients=10, byzantine=(0, 1), **kwargs
):
    rng_factory = RngFactory(0)
    partitions = iid_partition(split.train, num_clients, rng=rng_factory.make("p"))
    clients = build_clients(
        split.train,
        partitions,
        byzantine,
        batch_size=16,
        poison_labels=attack.poisons_data,
        rng_factory=rng_factory,
    )
    model = build_model("mlp", split.spec, rng=0, params={"hidden_dims": (16,)})
    server = FederatedServer(
        model, aggregator, learning_rate=0.1, num_byzantine_hint=len(byzantine), rng=0
    )
    return FederatedSimulation(
        server,
        clients,
        attack,
        split.test,
        attack_rng=np.random.default_rng(0),
        **kwargs,
    )


class TestBuildClients:
    def test_byzantine_flags_and_counts(self, split):
        partitions = iid_partition(split.train, 10, rng=0)
        clients = build_clients(split.train, partitions, [2, 5])
        assert sum(c.is_byzantine for c in clients) == 2
        assert clients[2].is_byzantine and clients[5].is_byzantine
        assert len(clients) == 10

    def test_label_poisoning_only_on_byzantine_clients(self, split):
        partitions = iid_partition(split.train, 6, rng=0)
        clients = build_clients(split.train, partitions, [0], poison_labels=True)
        original = split.train.labels[partitions[0]]
        assert not np.array_equal(clients[0].dataset.labels, original)
        np.testing.assert_array_equal(
            clients[1].dataset.labels, split.train.labels[partitions[1]]
        )


class TestFederatedSimulation:
    def test_training_reduces_loss(self, split):
        simulation = make_simulation(split, NoAttack(), MeanAggregator(), byzantine=())
        recorder = simulation.run(8)
        assert recorder.losses[-1] < recorder.losses[0]
        assert len(recorder) == 8

    def test_accuracy_recorded_each_round_by_default(self, split):
        simulation = make_simulation(split, NoAttack(), MeanAggregator(), byzantine=())
        recorder = simulation.run(3)
        assert all(r.test_accuracy is not None for r in recorder)

    def test_eval_every_skips_rounds(self, split):
        simulation = make_simulation(
            split, NoAttack(), MeanAggregator(), byzantine=(), eval_every=3
        )
        recorder = simulation.run(6)
        evaluated = [r.test_accuracy is not None for r in recorder]
        assert evaluated == [False, False, True, False, False, True]

    def test_selection_bookkeeping_under_signguard(self, split):
        simulation = make_simulation(
            split, SignFlipAttack(), SignGuard(), byzantine=(0, 1)
        )
        recorder = simulation.run(4)
        record = recorder.rounds[0]
        assert record.benign_total == 8
        assert record.byzantine_total == 2
        assert 0 <= record.benign_selected <= 8

    def test_byzantine_majority_rejected(self, split):
        with pytest.raises(ValueError):
            make_simulation(
                split, SignFlipAttack(), MeanAggregator(), byzantine=tuple(range(5))
            )

    def test_lr_decay_applied(self, split):
        simulation = make_simulation(
            split, NoAttack(), MeanAggregator(), byzantine=(), lr_decay=0.5
        )
        initial = simulation.server.learning_rate
        simulation.run(2)
        assert simulation.server.learning_rate == pytest.approx(initial * 0.25)

    def test_invalid_round_count_rejected(self, split):
        simulation = make_simulation(split, NoAttack(), MeanAggregator(), byzantine=())
        with pytest.raises(ValueError):
            simulation.run(0)

    def test_attack_name_recorded(self, split):
        simulation = make_simulation(
            split, SignFlipAttack(), SignGuard(), byzantine=(0,)
        )
        recorder = simulation.run(1)
        assert recorder.rounds[0].attack_name == "sign_flip"
