"""Tests for the process-pool collect backend (repro.fl.ProcessCollector).

Contract: persistent worker processes each own a chunk of the client
population (and those clients' RNG streams) plus a model replica; per round
the parent broadcasts the global ``state_dict()`` and the workers write
gradients into a shared-memory round buffer.  Results must be bit-identical
to the sequential path at any worker count, across rounds, including
BatchNorm buffer state and evaluation metrics; client exceptions propagate;
the buffer is NaN-invalidated against stale rows.

The suite uses 2 workers and tiny populations so it stays fast on one core.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataConfig, DefenseConfig, ExperimentConfig, TrainingConfig
from repro.fl.collector import ProcessCollector, SequentialCollector
from repro.fl.experiment import run_experiment
from test_fl_parallel_collect import (
    BatchNormMLP,
    make_clients,
    make_model,
    run_batchnorm_rounds,
)


def collect_rounds(make_collector, *, n_clients=6, rounds=3, dtype=np.float64):
    """Round buffers from ``rounds`` successive collects with one collector."""
    clients = make_clients(n_clients)
    model = make_model(dtype=None if dtype == np.float64 else dtype)
    out = np.empty((n_clients, model.num_parameters()), dtype=dtype)
    buffers = []
    with make_collector() as collector:
        for _ in range(rounds):
            collector.collect(clients, model, out)
            buffers.append(out.copy())
    losses = [client.last_loss for client in clients]
    return buffers, losses


class TestBitEquality:
    def test_process_float64_bit_identical_to_sequential(self):
        sequential, seq_losses = collect_rounds(SequentialCollector)
        process, proc_losses = collect_rounds(lambda: ProcessCollector(2))
        for seq_round, proc_round in zip(sequential, process):
            assert np.array_equal(seq_round, proc_round)
        # Worker-side client state (the loss of the round's batch) is
        # mirrored back onto the parent's client objects.
        assert seq_losses == proc_losses

    def test_process_float32_bit_identical_to_sequential(self):
        sequential, _ = collect_rounds(SequentialCollector, dtype=np.float32)
        process, _ = collect_rounds(lambda: ProcessCollector(2), dtype=np.float32)
        assert sequential[0].dtype == np.float32
        for seq_round, proc_round in zip(sequential, process):
            assert np.array_equal(seq_round, proc_round)

    def test_worker_count_does_not_change_results(self):
        two, _ = collect_rounds(lambda: ProcessCollector(2), rounds=2)
        three, _ = collect_rounds(lambda: ProcessCollector(3), rounds=2)
        for a, b in zip(two, three):
            assert np.array_equal(a, b)

    def test_single_worker_degenerates_to_sequential_inline(self):
        # n_workers=1 never spawns processes; the in-process loop runs.
        collector = ProcessCollector(1)
        clients = make_clients(4)
        model = make_model()
        out = np.empty((4, model.num_parameters()))
        try:
            collector.collect(clients, model, out)
            assert collector._procs == []
        finally:
            collector.close()
        assert np.all(np.isfinite(out))

    def test_full_experiment_equivalent_with_process_backend(self):
        def run(backend, n_workers):
            config = ExperimentConfig(
                num_clients=6,
                seed=5,
                data=DataConfig(dataset="mnist_like", num_train=120, num_test=40),
                training=TrainingConfig(
                    model="mlp",
                    rounds=2,
                    batch_size=16,
                    n_workers=n_workers,
                    collect_backend=backend,
                ),
                defense=DefenseConfig(name="signguard"),
            )
            return run_experiment(config)

        sequential = run("thread", 1)
        process = run("process", 2)
        for a, b in zip(sequential.rounds, process.rounds):
            assert a.train_loss == b.train_loss
            assert a.test_accuracy == b.test_accuracy
            assert a.selected_clients == b.selected_clients


class TestWorkerLifecycle:
    def test_workers_persist_across_rounds(self):
        collector = ProcessCollector(2)
        clients = make_clients(4)
        model = make_model()
        out = np.empty((4, model.num_parameters()))
        try:
            collector.collect(clients, model, out)
            first_pids = [process.pid for process in collector._procs]
            collector.collect(clients, model, out)
            assert [process.pid for process in collector._procs] == first_pids
        finally:
            collector.close()

    def test_collector_reusable_after_close(self):
        collector = ProcessCollector(2)
        clients = make_clients(4)
        model = make_model()
        out = np.empty((4, model.num_parameters()))
        try:
            collector.collect(clients, model, out)
            collector.close()
            assert collector._procs == []
            collector.collect(clients, model, out)
        finally:
            collector.close()
        assert np.all(np.isfinite(out))

    def test_worker_timings_cover_all_clients(self):
        collector = ProcessCollector(3)
        clients = make_clients(8)
        model = make_model()
        out = np.empty((8, model.num_parameters()))
        try:
            collector.collect(clients, model, out)
            timings = collector.worker_timings
        finally:
            collector.close()
        assert sorted(worker for worker, _, _ in timings) == [0, 1, 2]
        assert sum(count for _, _, count in timings) == 8
        assert all(seconds >= 0 for _, seconds, _ in timings)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="n_workers"):
            ProcessCollector(0)

    def test_profiler_records_per_worker_stages(self):
        from repro.perf.profiler import RoundProfiler

        profiler = RoundProfiler()
        config = ExperimentConfig(
            num_clients=4,
            seed=0,
            data=DataConfig(dataset="mnist_like", num_train=80, num_test=40),
            training=TrainingConfig(
                model="mlp",
                rounds=2,
                batch_size=16,
                n_workers=2,
                collect_backend="process",
            ),
            defense=DefenseConfig(name="signguard"),
        )
        run_experiment(config, profiler=profiler)
        summary = profiler.summary()
        worker_stages = [s for s in summary if s.startswith("collect_worker_")]
        assert sorted(worker_stages) == ["collect_worker_0", "collect_worker_1"]


class TestFailureSemantics:
    def test_client_exception_propagates_and_invalidates(self):
        from repro.fl.client import BenignClient

        class ExplodingClient(BenignClient):
            def compute_gradient(self, model):
                raise RuntimeError("client 0 went Byzantine for real")

        clients = make_clients(4)
        clients[0] = ExplodingClient(
            0, clients[0].dataset, batch_size=4, rng=np.random.default_rng(0)
        )
        model = make_model()
        out = np.full((4, model.num_parameters()), 7.0)
        collector = ProcessCollector(2)
        try:
            with pytest.raises(RuntimeError, match="went Byzantine"):
                collector.collect(clients, model, out)
        finally:
            collector.close()
        # Stale previous-round values cannot survive a failed round: the
        # failing worker's remaining rows are NaN, the other worker's rows
        # hold this round's gradients.
        assert not np.any(out == 7.0)
        assert np.all(np.isnan(out[0]))
        assert np.all(np.isnan(out[2]))
        assert np.all(np.isfinite(out[1]))
        assert np.all(np.isfinite(out[3]))

    def test_dead_worker_raises_and_invalidates(self):
        clients = make_clients(4)
        model = make_model()
        out = np.empty((4, model.num_parameters()))
        collector = ProcessCollector(2)
        try:
            collector.collect(clients, model, out)  # spawns the workers
            for process in collector._procs:
                process.terminate()
                process.join(timeout=5)
            out.fill(7.0)  # the "previous round" a caller might aggregate
            with pytest.raises(RuntimeError, match="died mid-round"):
                collector.collect(clients, model, out)
        finally:
            collector.close()
        # The caller's buffer must not keep stale rows when workers die
        # before replying.
        assert np.all(np.isnan(out))

    def test_dropout_model_rejected(self):
        from repro.nn.layers import Dropout, Flatten, Linear, Sequential
        from repro.nn.module import Module

        class DropoutMLP(Module):
            def __init__(self):
                super().__init__()
                self.network = Sequential(
                    Flatten(), Linear(14 * 14, 10, rng=0), Dropout(0.5, rng=0)
                )

            def forward(self, x):
                return self.network(x)

            def backward(self, grad_output):
                return self.network.backward(grad_output)

        clients = make_clients(4)
        model = DropoutMLP()
        out = np.empty((4, model.num_parameters()))
        collector = ProcessCollector(2)
        try:
            with pytest.raises(ValueError, match="RNG-consuming"):
                collector.collect(clients, model, out)
        finally:
            collector.close()


class TestBatchNormParity:
    def test_process_buffers_and_eval_match_sequential(self):
        seq_out, seq_acc, seq_loss, seq_buffers = run_batchnorm_rounds(
            SequentialCollector
        )
        proc_out, proc_acc, proc_loss, proc_buffers = run_batchnorm_rounds(
            lambda: ProcessCollector(2)
        )
        assert np.array_equal(seq_out, proc_out)
        assert seq_acc == proc_acc
        assert seq_loss == proc_loss
        for name in seq_buffers:
            assert np.array_equal(seq_buffers[name], proc_buffers[name]), name

    def test_batchnorm_model_collects_without_nan(self):
        clients = make_clients(5)
        model = BatchNormMLP()
        out = np.empty((5, model.num_parameters()))
        with ProcessCollector(2) as collector:
            collector.collect(clients, model, out)
        assert np.all(np.isfinite(out))


class TestConfigValidation:
    def test_collect_backend_validated(self):
        config = TrainingConfig(collect_backend="process", n_workers=2)
        assert config.validate() is config
        with pytest.raises(ValueError, match="collect_backend"):
            TrainingConfig(collect_backend="gevent").validate()

    def test_collect_backend_serialization_round_trip(self):
        config = ExperimentConfig(
            training=TrainingConfig(collect_backend="process", n_workers=4)
        )
        restored = ExperimentConfig.from_dict(config.to_dict())
        assert restored.training.collect_backend == "process"
        assert restored.training.n_workers == 4
