"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn.losses import CrossEntropyLoss, MSELoss, accuracy


class TestCrossEntropyLoss:
    def test_uniform_logits_give_log_num_classes(self):
        loss = CrossEntropyLoss()(np.zeros((4, 10)), np.array([0, 1, 2, 3]))
        assert loss == pytest.approx(np.log(10))

    def test_perfect_prediction_gives_near_zero_loss(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = CrossEntropyLoss()(logits, np.array([1, 2]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_gradient_matches_finite_differences(self, rng, gradcheck):
        loss_fn = CrossEntropyLoss()
        logits = rng.normal(size=(3, 4))
        targets = np.array([0, 3, 2])
        loss_fn(logits, targets)
        analytic = loss_fn.backward()

        def scalar(perturbed):
            return CrossEntropyLoss()(perturbed, targets)

        numeric = gradcheck(scalar, logits.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_gradient_rows_sum_to_zero(self, rng):
        loss_fn = CrossEntropyLoss()
        loss_fn(rng.normal(size=(5, 6)), rng.integers(0, 6, size=5))
        np.testing.assert_allclose(loss_fn.backward().sum(axis=1), 0.0, atol=1e-12)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()

    def test_batch_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros((3, 2)), np.zeros(4, dtype=int))


class TestMSELoss:
    def test_value(self):
        loss = MSELoss()(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        assert loss == pytest.approx(2.5)

    def test_gradient_matches_finite_differences(self, rng, gradcheck):
        loss_fn = MSELoss()
        predictions = rng.normal(size=(4, 3))
        targets = rng.normal(size=(4, 3))
        loss_fn(predictions, targets)
        analytic = loss_fn.backward()
        numeric = gradcheck(lambda p: MSELoss()(p, targets), predictions.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-7)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros((2, 2)), np.zeros((2, 3)))


class TestAccuracy:
    def test_perfect_and_zero(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 0])) == 0.0

    def test_partial(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5
