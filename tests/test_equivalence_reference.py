"""Equivalence suite: optimized paths vs frozen seed implementations.

The round-level compute cache, the partition-based Krum scoring, the sliced
Bulyan selection, and the vectorized Mean-Shift must all make *exactly* the
same decisions as the pre-refactor implementations (kept frozen in
:mod:`repro.perf.reference`).  Selections are compared exactly; aggregated
gradients within tight float tolerance (summation orders may legally differ
by ulps).  A float32 section checks the reduced-precision mode stays within
float32 tolerance of the float64 reference.
"""

import numpy as np
import pytest

from repro.aggregators.base import ServerContext
from repro.aggregators.bulyan import BulyanAggregator
from repro.aggregators.dnc import DivideAndConquerAggregator
from repro.aggregators.krum import KrumAggregator, MultiKrumAggregator, krum_scores
from repro.clustering import MeanShift
from repro.core.pipeline import SignGuardPipeline
from repro.perf import reference as ref
from repro.utils.batch import GradientBatch


@pytest.fixture
def population(rng):
    """30 honest gradients + 6 colluding outliers, dim 200."""
    signal = rng.normal(0.1, 1.0, size=200)
    honest = signal[None, :] + rng.normal(0, 0.3, size=(30, 200))
    malicious = -1.5 * signal[None, :] + rng.normal(0, 0.05, size=(6, 200))
    return np.vstack([honest, malicious])


class TestKrumEquivalence:
    def test_scores_bit_identical(self, population):
        for f in (0, 2, 6, 10):
            optimized = krum_scores(population, f)
            seed = ref.krum_scores_reference(population, f)
            np.testing.assert_array_equal(optimized, seed)

    def test_krum_selects_same_winner(self, population):
        result = KrumAggregator(num_byzantine=6)(population)
        seed_scores = ref.krum_scores_reference(population, 6)
        assert result.selected_indices[0] == int(np.argmin(seed_scores))

    def test_multi_krum_selects_same_set(self, population):
        result = MultiKrumAggregator(num_byzantine=6)(population)
        seed = np.sort(ref.multi_krum_select_reference(population, 6))
        np.testing.assert_array_equal(result.selected_indices, seed)

    def test_multi_krum_aggregate_matches(self, population):
        result = MultiKrumAggregator(num_byzantine=6)(population)
        seed = ref.multi_krum_select_reference(population, 6)
        np.testing.assert_allclose(
            result.gradient, population[seed].mean(axis=0), rtol=1e-12, atol=1e-12
        )

    def test_two_clients_edge_case(self, rng):
        pair = rng.normal(size=(2, 8))
        np.testing.assert_array_equal(
            krum_scores(pair, 0), ref.krum_scores_reference(pair, 0)
        )


class TestBulyanEquivalence:
    @pytest.mark.parametrize("f", [0, 2, 6])
    def test_same_selection_and_aggregate(self, population, f):
        result = BulyanAggregator(num_byzantine=f)(population)
        seed = ref.bulyan_reference(population, f)
        np.testing.assert_array_equal(result.selected_indices, seed["selected_indices"])
        np.testing.assert_allclose(
            result.gradient, seed["gradient"], rtol=1e-12, atol=1e-12
        )


class TestDnCEquivalence:
    def test_same_selection_with_identical_rng(self, population):
        aggregator = DivideAndConquerAggregator(num_byzantine=6)
        context = ServerContext.make(rng=7)
        result = aggregator(population, context)
        seed = ref.dnc_reference(population, 6, np.random.default_rng(7))
        np.testing.assert_array_equal(result.selected_indices, seed["selected_indices"])
        np.testing.assert_allclose(
            result.gradient, seed["gradient"], rtol=1e-12, atol=1e-12
        )


class TestMeanShiftEquivalence:
    def test_same_labels_and_centers(self, rng):
        features = np.vstack(
            [
                rng.normal([0.6, 0.05, 0.35], 0.02, size=(16, 3)),
                rng.normal([0.3, 0.05, 0.65], 0.02, size=(4, 3)),
            ]
        )
        model = MeanShift(quantile=0.5).fit(features)
        seed = ref.meanshift_reference(features, quantile=0.5)
        np.testing.assert_array_equal(model.labels_, seed["labels"])
        assert model.n_clusters_ == seed["n_clusters"]
        np.testing.assert_allclose(
            model.cluster_centers_, seed["cluster_centers"], rtol=1e-9, atol=1e-12
        )

    def test_same_largest_cluster_across_bandwidths(self, rng):
        features = rng.normal(size=(25, 4))
        for bandwidth in (0.5, 1.0, 3.0):
            model = MeanShift(bandwidth=bandwidth).fit(features)
            seed = ref.meanshift_reference(features, bandwidth=bandwidth)
            np.testing.assert_array_equal(model.labels_, seed["labels"])

    def test_identical_points(self):
        features = np.zeros((6, 3))
        model = MeanShift().fit(features)
        seed = ref.meanshift_reference(features)
        np.testing.assert_array_equal(model.labels_, seed["labels"])


class TestSignGuardEquivalence:
    @pytest.mark.parametrize("similarity", ["none", "cosine", "euclidean"])
    def test_all_variants_same_selection_and_aggregate(
        self, population, rng, similarity
    ):
        reference_gradient = population[:30].mean(axis=0)
        pipeline = SignGuardPipeline(similarity=similarity)
        optimized = pipeline.aggregate(
            population, reference=reference_gradient, rng=np.random.default_rng(11)
        )
        seed = ref.signguard_pipeline_reference(
            population,
            reference=reference_gradient,
            rng=np.random.default_rng(11),
            similarity=similarity,
        )
        np.testing.assert_array_equal(
            optimized["selected_indices"], seed["selected_indices"]
        )
        np.testing.assert_allclose(
            optimized["gradient"], seed["gradient"], rtol=1e-10, atol=1e-12
        )

    @pytest.mark.parametrize("similarity", ["none", "cosine", "euclidean"])
    def test_first_round_no_reference(self, population, similarity):
        pipeline = SignGuardPipeline(similarity=similarity)
        optimized = pipeline.aggregate(
            population, reference=None, rng=np.random.default_rng(3)
        )
        seed = ref.signguard_pipeline_reference(
            population, reference=None, rng=np.random.default_rng(3),
            similarity=similarity,
        )
        np.testing.assert_array_equal(
            optimized["selected_indices"], seed["selected_indices"]
        )
        np.testing.assert_allclose(
            optimized["gradient"], seed["gradient"], rtol=1e-10, atol=1e-12
        )

    def test_ablation_toggles(self, population):
        for toggles in (
            dict(use_sign_clustering=False),
            dict(use_norm_threshold=False),
            dict(use_norm_clipping=False),
        ):
            pipeline = SignGuardPipeline(**toggles)
            optimized = pipeline.aggregate(population, rng=np.random.default_rng(5))
            seed = ref.signguard_pipeline_reference(
                population, rng=np.random.default_rng(5), **toggles
            )
            np.testing.assert_array_equal(
                optimized["selected_indices"], seed["selected_indices"]
            )
            np.testing.assert_allclose(
                optimized["gradient"], seed["gradient"], rtol=1e-10, atol=1e-12
            )

    def test_pipeline_computes_each_cached_quantity_once(self, population):
        """The optimized pipeline must never fall back to naive recomputation."""
        batch = GradientBatch(population)
        pipeline = SignGuardPipeline(similarity="euclidean")
        pipeline.aggregate(batch, reference=None, rng=np.random.default_rng(1))
        assert batch.compute_count("norms") == 1
        assert batch.compute_count("sq_norms") <= 1
        assert batch.compute_count("gram") == 1
        assert batch.compute_count("sq_distances") == 1
        assert batch.compute_count("distances") == 1


class TestFloat32Mode:
    def test_selections_match_float64_reference(self, population):
        """Reduced precision may shift aggregates within float32 tolerance but
        must keep the same trusted set on well-separated data."""
        pipeline = SignGuardPipeline()
        result32 = pipeline.aggregate(
            population.astype(np.float32), rng=np.random.default_rng(2)
        )
        seed = ref.signguard_pipeline_reference(
            population, rng=np.random.default_rng(2)
        )
        np.testing.assert_array_equal(
            result32["selected_indices"], seed["selected_indices"]
        )
        np.testing.assert_allclose(
            result32["gradient"], seed["gradient"], rtol=1e-4, atol=1e-4
        )

    def test_krum_float32_same_winner(self, population):
        result32 = KrumAggregator(num_byzantine=6)(population.astype(np.float32))
        seed_scores = ref.krum_scores_reference(population, 6)
        assert result32.selected_indices[0] == int(np.argmin(seed_scores))
