"""Tests for numpy-aware JSON serialization."""

import numpy as np

from repro.utils.serialization import dumps, load_json, save_json


class TestSerialization:
    def test_round_trip_with_numpy_types(self, tmp_path):
        payload = {
            "int": np.int64(3),
            "float": np.float32(0.5),
            "bool": np.bool_(True),
            "array": np.arange(4),
            "nested": {"values": [np.float64(1.5)]},
        }
        path = save_json(payload, tmp_path / "result.json")
        restored = load_json(path)
        assert restored["int"] == 3
        assert restored["float"] == 0.5
        assert restored["bool"] is True
        assert restored["array"] == [0, 1, 2, 3]
        assert restored["nested"]["values"] == [1.5]

    def test_creates_parent_directories(self, tmp_path):
        path = save_json({"a": 1}, tmp_path / "deep" / "dir" / "x.json")
        assert path.exists()

    def test_dumps_returns_string(self):
        text = dumps({"value": np.float64(2.0)})
        assert '"value": 2.0' in text
