"""Tests for the ByzMean hybrid attack (the paper's Section III proposal)."""

import numpy as np
import pytest

from repro.attacks import (
    AttackContext,
    ByzMeanAttack,
    LittleIsEnoughAttack,
    RandomAttack,
)


@pytest.fixture
def context(rng):
    return AttackContext.make(num_clients=20, byzantine_indices=np.arange(6), rng=rng)


class TestByzMeanAttack:
    def test_overall_mean_equals_target(self, benign_gradients, context):
        """Eq. (8): after the attack, the mean of ALL submitted gradients is g_m1."""
        attack = ByzMeanAttack(inner=LittleIsEnoughAttack(z=0.3))
        submitted = attack.apply(benign_gradients, context)
        target = attack._target_gradient(benign_gradients, context)
        np.testing.assert_allclose(submitted.mean(axis=0), target, atol=1e-10)

    def test_two_groups_of_malicious_clients(self, benign_gradients, context):
        attack = ByzMeanAttack()
        malicious = attack.craft(benign_gradients, context)
        m1 = int(np.floor(0.5 * 6))
        # First group identical to each other, second group identical to each other.
        for row in malicious[1:m1]:
            np.testing.assert_array_equal(row, malicious[0])
        for row in malicious[m1 + 1 :]:
            np.testing.assert_array_equal(row, malicious[m1])
        # And the two groups differ.
        assert not np.allclose(malicious[0], malicious[m1])

    def test_m1_fraction_one_sends_only_target(self, benign_gradients, context):
        attack = ByzMeanAttack(m1_fraction=1.0)
        malicious = attack.craft(benign_gradients, context)
        for row in malicious[1:]:
            np.testing.assert_array_equal(row, malicious[0])

    def test_random_inner_attack_supported(self, benign_gradients, context):
        attack = ByzMeanAttack(inner=RandomAttack(std=0.5))
        submitted = attack.apply(benign_gradients, context)
        assert submitted.shape == benign_gradients.shape

    def test_breaks_mean_aggregation(self, benign_gradients, context):
        """The attack steers the mean away from the benign mean."""
        attack = ByzMeanAttack(inner=LittleIsEnoughAttack(z=1.5))
        submitted = attack.apply(benign_gradients, context)
        benign_mean = benign_gradients[6:].mean(axis=0)
        poisoned_mean = submitted.mean(axis=0)
        clean_mean = benign_gradients.mean(axis=0)
        assert np.linalg.norm(poisoned_mean - benign_mean) > np.linalg.norm(
            clean_mean - benign_mean
        )

    def test_invalid_m1_fraction_rejected(self):
        with pytest.raises(ValueError):
            ByzMeanAttack(m1_fraction=1.5)
