"""Property-based tests (hypothesis) for core invariants.

These cover the algebraic properties every aggregation rule and feature
extractor must satisfy regardless of the concrete input: permutation
invariance, clipping bounds, convex-hull containment, sign-statistics
normalization, and partition completeness.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.aggregators import (
    CoordinateMedianAggregator,
    MeanAggregator,
    TrimmedMeanAggregator,
    build_aggregator,
    clip_gradients_to_norm,
)
from repro.aggregators.base import ServerContext
from repro.aggregators.geometric_median import geometric_median
from repro.core.features import sign_statistics
from repro.data.datasets import ArrayDataset, DataSpec
from repro.data.partition import iid_partition, sort_and_partition

SETTINGS = dict(max_examples=25, deadline=None)


def gradient_matrices(min_clients=3, max_clients=12, min_dim=2, max_dim=30):
    """Strategy producing well-conditioned gradient matrices.

    Subnormal elements are excluded: properties like positive-scaling
    invariance of the sign statistics are mathematically false when a
    scaled element underflows to exactly zero (e.g. ``0.5 * 5e-324 == 0.0``),
    which is a float artifact rather than an algorithmic violation.
    """
    return st.integers(min_clients, max_clients).flatmap(
        lambda n: st.integers(min_dim, max_dim).flatmap(
            lambda d: arrays(
                dtype=np.float64,
                shape=(n, d),
                elements=st.floats(
                    -50,
                    50,
                    allow_nan=False,
                    allow_infinity=False,
                    allow_subnormal=False,
                ),
            )
        )
    )


class TestAggregatorProperties:
    @given(gradients=gradient_matrices())
    @settings(**SETTINGS)
    def test_mean_median_permutation_invariant(self, gradients):
        context = ServerContext.make(rng=0)
        permutation = np.random.default_rng(0).permutation(len(gradients))
        for aggregator in (MeanAggregator(), CoordinateMedianAggregator()):
            original = aggregator(gradients, context).gradient
            permuted = aggregator(gradients[permutation], context).gradient
            np.testing.assert_allclose(original, permuted, atol=1e-9)

    @given(gradients=gradient_matrices())
    @settings(**SETTINGS)
    def test_coordinatewise_rules_stay_in_value_range(self, gradients):
        """Mean, median, and trimmed mean are per-coordinate convex combinations."""
        context = ServerContext.make(rng=0, num_byzantine_hint=1)
        lower, upper = gradients.min(axis=0), gradients.max(axis=0)
        for aggregator in (
            MeanAggregator(),
            CoordinateMedianAggregator(),
            TrimmedMeanAggregator(trim=1),
        ):
            result = aggregator(gradients, context).gradient
            assert np.all(result >= lower - 1e-9)
            assert np.all(result <= upper + 1e-9)

    @given(gradients=gradient_matrices())
    @settings(**SETTINGS)
    def test_krum_output_is_an_input_row(self, gradients):
        context = ServerContext.make(rng=0, num_byzantine_hint=1)
        result = build_aggregator("krum", {"num_byzantine": 1})(gradients, context)
        matches = np.all(np.isclose(gradients, result.gradient[None, :]), axis=1)
        assert matches.any()

    @given(gradients=gradient_matrices(min_clients=4))
    @settings(**SETTINGS)
    def test_translation_equivariance_of_mean_and_median(self, gradients):
        context = ServerContext.make(rng=0)
        shift = 3.7
        for aggregator in (MeanAggregator(), CoordinateMedianAggregator()):
            base = aggregator(gradients, context).gradient
            shifted = aggregator(gradients + shift, context).gradient
            np.testing.assert_allclose(shifted, base + shift, atol=1e-8)


class TestClippingProperties:
    @given(
        gradients=gradient_matrices(),
        bound=st.floats(0.01, 100, allow_nan=False, allow_infinity=False),
    )
    @settings(**SETTINGS)
    def test_clipped_norms_never_exceed_bound(self, gradients, bound):
        clipped = clip_gradients_to_norm(gradients, bound)
        norms = np.linalg.norm(clipped, axis=1)
        assert np.all(norms <= bound * (1 + 1e-9))

    @given(
        gradients=gradient_matrices(),
        bound=st.floats(0.01, 100, allow_nan=False, allow_infinity=False),
    )
    @settings(**SETTINGS)
    def test_clipping_preserves_direction(self, gradients, bound):
        clipped = clip_gradients_to_norm(gradients, bound)
        for original, result in zip(gradients, clipped):
            norm = np.linalg.norm(original)
            # Skip (sub)normal rows where cosine is numerically meaningless.
            if norm > 1e-6:
                cosine = original @ result / (norm * np.linalg.norm(result))
                assert cosine > 1 - 1e-6

    @given(gradients=gradient_matrices())
    @settings(**SETTINGS)
    def test_clipping_is_idempotent(self, gradients):
        once = clip_gradients_to_norm(gradients, 1.0)
        twice = clip_gradients_to_norm(once, 1.0)
        np.testing.assert_allclose(once, twice, atol=1e-12)


class TestGeometricMedianProperties:
    @given(gradients=gradient_matrices(min_clients=3, max_clients=8, max_dim=10))
    @settings(**SETTINGS)
    def test_objective_not_worse_than_mean(self, gradients):
        """The geometric median minimizes the sum of distances, so it must be
        at least as good as the arithmetic mean under that objective."""
        estimate = geometric_median(gradients)
        mean = gradients.mean(axis=0)
        objective_estimate = np.linalg.norm(gradients - estimate, axis=1).sum()
        objective_mean = np.linalg.norm(gradients - mean, axis=1).sum()
        assert objective_estimate <= objective_mean + 1e-6


class TestSignStatisticsProperties:
    @given(gradients=gradient_matrices())
    @settings(**SETTINGS)
    def test_fractions_sum_to_one_and_are_nonnegative(self, gradients):
        stats = sign_statistics(gradients)
        assert np.all(stats >= 0)
        np.testing.assert_allclose(stats.sum(axis=1), 1.0, atol=1e-9)

    @given(gradients=gradient_matrices())
    @settings(**SETTINGS)
    def test_negation_swaps_positive_and_negative(self, gradients):
        stats = sign_statistics(gradients)
        negated = sign_statistics(-gradients)
        np.testing.assert_allclose(stats[:, 0], negated[:, 2], atol=1e-12)
        np.testing.assert_allclose(stats[:, 2], negated[:, 0], atol=1e-12)

    @given(
        gradients=gradient_matrices(),
        scale=st.floats(0.1, 10, allow_nan=False, allow_infinity=False),
    )
    @settings(**SETTINGS)
    def test_positive_scaling_invariance(self, gradients, scale):
        np.testing.assert_allclose(
            sign_statistics(gradients), sign_statistics(scale * gradients), atol=1e-12
        )


class TestPartitionProperties:
    @given(
        num_samples=st.integers(40, 200),
        num_clients=st.integers(2, 10),
        iid_fraction=st.floats(0.0, 1.0),
        seed=st.integers(0, 1000),
    )
    @settings(**SETTINGS)
    def test_partitions_are_exact_covers(
        self, num_samples, num_clients, iid_fraction, seed
    ):
        rng = np.random.default_rng(seed)
        spec = DataSpec(kind="image", num_classes=4, channels=1, height=2, width=2)
        dataset = ArrayDataset(
            rng.normal(size=(num_samples, 1, 2, 2)),
            rng.integers(0, 4, size=num_samples),
            spec,
        )
        for partitions in (
            iid_partition(dataset, num_clients, rng=rng),
            sort_and_partition(
                dataset, num_clients, iid_fraction=iid_fraction, rng=rng
            ),
        ):
            combined = np.concatenate(partitions)
            assert len(combined) == num_samples
            assert len(np.unique(combined)) == num_samples
