"""The worker's pickled-SETUP trust gate (``--allow-pickle-setup``).

``SETUP`` bodies are the transport's one pickled payload, so a worker
that untrusted peers can reach must be able to refuse them.  The gate:

* ``WorkerServer(allow_pickle_setup=False)`` refuses both plain and
  merge ``SETUP`` with a clear error, before ever unpickling;
* the ``repro-worker`` CLI defaults the gate **closed** and opens it
  only with ``--allow-pickle-setup``;
* the fleet helpers (thread fleet, local subprocess fleet) keep working
  untouched — they serve only their own caller over loopback;
* the ``WELCOME`` header advertises ``accepts_pickle_setup`` so callers
  can fail fast.
"""

import pickle
import socket

import pytest

from repro.fl.transport.codec import MSG_ERROR, MSG_HELLO, MSG_SETUP, MSG_WELCOME
from repro.fl.transport.fleet import spawn_worker_process
from repro.fl.transport.protocol import Channel, hello_header
from repro.fl.transport.worker import WorkerServer, main as worker_main


def _handshake(address: str, signature: str = "0" * 16) -> Channel:
    host, port = address.rsplit(":", 1)
    channel = Channel(socket.create_connection((host, int(port)), timeout=10))
    channel.settimeout(10)
    channel.send(MSG_HELLO, hello_header(signature))
    return channel


class TestProgrammaticGate:
    def test_default_accepts_pickle_setup(self):
        server = WorkerServer()
        try:
            assert server.allow_pickle_setup is True
        finally:
            server.close()

    def test_welcome_advertises_gate(self):
        server = WorkerServer(allow_pickle_setup=False)
        server.start_in_thread()
        try:
            channel = _handshake(server.address)
            msg_type, header, _ = channel.recv()
            assert msg_type == MSG_WELCOME
            assert header["accepts_pickle_setup"] is False
            channel.close()
        finally:
            server.close()

    @pytest.mark.parametrize("merge", [False, True])
    def test_gated_worker_refuses_setup(self, merge):
        server = WorkerServer(allow_pickle_setup=False)
        server.start_in_thread()
        try:
            channel = _handshake(server.address)
            msg_type, _, _ = channel.recv()
            assert msg_type == MSG_WELCOME
            body = pickle.dumps((None, [], [], {}, {}))
            channel.send(MSG_SETUP, {"merge": True} if merge else {}, body)
            msg_type, header, _ = channel.recv()
            assert msg_type == MSG_ERROR
            assert "allow-pickle-setup" in header["error"]
            channel.close()
        finally:
            server.close()

    def test_open_worker_still_reports_bad_pickle(self):
        server = WorkerServer(allow_pickle_setup=True)
        server.start_in_thread()
        try:
            channel = _handshake(server.address)
            msg_type, _, _ = channel.recv()
            assert msg_type == MSG_WELCOME
            channel.send(MSG_SETUP, {}, b"not a pickle")
            msg_type, header, _ = channel.recv()
            assert msg_type == MSG_ERROR
            assert "failed to unpickle" in header["error"]
            channel.close()
        finally:
            server.close()


class TestCliGate:
    def test_cli_defaults_to_refusing_pickles(self):
        worker = spawn_worker_process(allow_pickle_setup=False)
        try:
            channel = _handshake(worker.address)
            msg_type, header, _ = channel.recv()
            assert msg_type == MSG_WELCOME
            assert header["accepts_pickle_setup"] is False
            channel.send(MSG_SETUP, {}, pickle.dumps((None, [], [], {}, {})))
            msg_type, header, _ = channel.recv()
            assert msg_type == MSG_ERROR
            assert "allow-pickle-setup" in header["error"]
            channel.close()
        finally:
            worker.terminate()

    def test_fleet_helper_opens_the_gate(self):
        worker = spawn_worker_process()
        try:
            channel = _handshake(worker.address)
            msg_type, header, _ = channel.recv()
            assert msg_type == MSG_WELCOME
            assert header["accepts_pickle_setup"] is True
            channel.close()
        finally:
            worker.terminate()

    def test_main_parser_rejects_unknown_args(self):
        with pytest.raises(SystemExit):
            worker_main(["--no-such-flag"])
