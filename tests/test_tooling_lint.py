"""Tests for the ``repro-lint`` framework: rules, suppressions, baseline, CLI.

Each shipped rule is proven to fire on a fixture package
(``tests/fixtures/lint``) that deliberately violates it, with golden
``(path, line, rule)`` assertions; the suppression and baseline
machinery round-trips; and a meta-test keeps the shipped tree itself
clean under the default configuration.
"""

from pathlib import Path

import pytest

from repro.tooling import (
    Baseline,
    BaselineEntry,
    Finding,
    LintConfig,
    run_lint,
)
from repro.tooling.ast_utils import (
    build_import_map,
    parse_suppressions,
    qualified_name,
)
from repro.tooling.cli import main as lint_main
from repro.tooling.engine import collect_sources

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE_ROOT = REPO_ROOT / "tests" / "fixtures" / "lint"


def fixture_config(**overrides):
    defaults = dict(
        root=FIXTURE_ROOT,
        package_root="src/fixpkg",
        package_name="fixpkg",
        script_roots=("scripts",),
        exclude=(),
        pickle_allowlist=("fixpkg.pickle_ok",),
        dtype_modules=("fixpkg",),
        wallclock_allowed=("fixpkg.perf",),
        pairwise_allowlist=("fixpkg.pairwise_ok",),
        protocol_module="fixpkg.proto.codec",
        protocol_worker_modules=("fixpkg.proto.worker",),
        protocol_caller_modules=("fixpkg.proto.client",),
    )
    defaults.update(overrides)
    return LintConfig(**defaults)


def findings_for(rule, paths=None):
    result = run_lint(fixture_config(), paths=paths, baseline=Baseline())
    return [
        (f.path, f.line, f.rule) for f in result.findings if f.rule == rule
    ]


class TestRuleFixtures:
    def test_rng_hygiene_fires(self):
        assert findings_for("rng-hygiene") == [
            ("src/fixpkg/rng_bad.py", 8, "rng-hygiene"),
            ("src/fixpkg/rng_bad.py", 12, "rng-hygiene"),
            ("src/fixpkg/rng_bad.py", 16, "rng-hygiene"),
            ("src/fixpkg/rng_bad.py", 20, "rng-hygiene"),
            ("src/fixpkg/rng_bad.py", 23, "rng-hygiene"),
        ]

    def test_pickle_boundary_fires(self):
        assert findings_for("pickle-boundary") == [
            ("src/fixpkg/pickle_bad.py", 3, "pickle-boundary"),
            ("src/fixpkg/pickle_bad.py", 4, "pickle-boundary"),
        ]

    def test_dtype_discipline_fires_and_spares_explicit(self):
        assert findings_for("dtype-discipline") == [
            ("src/fixpkg/dtype_bad.py", 7, "dtype-discipline"),
            ("src/fixpkg/dtype_bad.py", 11, "dtype-discipline"),
        ]

    def test_wallclock_ban_fires_and_spares_sleep(self):
        assert findings_for("wallclock-ban") == [
            ("src/fixpkg/wallclock_bad.py", 9, "wallclock-ban"),
            ("src/fixpkg/wallclock_bad.py", 13, "wallclock-ban"),
            ("src/fixpkg/wallclock_bad.py", 17, "wallclock-ban"),
        ]

    def test_pairwise_discipline_fires_and_spares_streaming(self):
        # The two dense accessor calls fire; the blocked primitives in
        # streaming_ok() and the allowlisted pairwise_ok module do not.
        assert findings_for("pairwise-discipline") == [
            ("src/fixpkg/pairwise_bad.py", 5, "pairwise-discipline"),
            ("src/fixpkg/pairwise_bad.py", 9, "pairwise-discipline"),
        ]

    def test_exception_hygiene_fires_and_spares_handlers(self):
        assert findings_for("exception-hygiene") == [
            ("src/fixpkg/exceptions_bad.py", 7, "exception-hygiene"),
            ("src/fixpkg/exceptions_bad.py", 14, "exception-hygiene"),
        ]

    def test_protocol_exhaustive_fires_for_forgotten_message(self):
        found = findings_for("protocol-exhaustive")
        # MSG_B (defined on line 4) is missing on the worker side AND from
        # MESSAGE_NAMES; the caller side speaks it.
        assert found == [
            ("src/fixpkg/proto/codec.py", 4, "protocol-exhaustive"),
            ("src/fixpkg/proto/codec.py", 4, "protocol-exhaustive"),
        ]

    def test_export_consistency_fires(self):
        assert findings_for("export-consistency") == [
            ("scripts/use_private.py", 3, "export-consistency"),
            ("scripts/use_private.py", 4, "export-consistency"),
            ("src/fixpkg/nall/__init__.py", 1, "export-consistency"),
            ("src/fixpkg/sub/__init__.py", 7, "export-consistency"),
        ]

    def test_subset_run_skips_project_wide_rules(self):
        # Without the protocol module in the file set the exhaustiveness
        # invariant is not checkable and must not fire spuriously.
        assert (
            findings_for(
                "protocol-exhaustive", paths=["src/fixpkg/rng_bad.py"]
            )
            == []
        )

    def test_every_shipped_rule_has_a_firing_fixture(self):
        from repro.tooling.rules import all_rules

        result = run_lint(fixture_config(), baseline=Baseline())
        fired = {finding.rule for finding in result.findings}
        assert fired == set(all_rules())


class TestSuppressions:
    def test_inline_suppression_silences_the_next_line(self):
        # rng_ok.py holds an unseeded default_rng() behind a justified
        # suppression comment; no rng finding may survive from it.
        result = run_lint(fixture_config(), baseline=Baseline())
        assert not any("rng_ok" in f.path for f in result.findings)

    def test_parse_same_line_and_reason_tail(self):
        per_line, whole = parse_suppressions(
            "x = 1  # repro-lint: disable=rule-a,rule-b -- because\n"
        )
        assert per_line == {1: {"rule-a", "rule-b"}}
        assert whole == set()

    def test_parse_comment_line_applies_to_next_code_line(self):
        text = (
            "# repro-lint: disable=rule-a -- justified\n"
            "# second comment line keeps the chain alive\n"
            "x = 1\n"
        )
        assert parse_suppressions(text)[0] == {3: {"rule-a"}}

    def test_blank_line_breaks_the_chain(self):
        text = "# repro-lint: disable=rule-a\n\nx = 1\n"
        assert parse_suppressions(text)[0] == {}

    def test_disable_file(self):
        per_line, whole = parse_suppressions(
            "# repro-lint: disable-file=rule-a\nx = 1\n"
        )
        assert whole == {"rule-a"}
        assert per_line == {}


class TestBaseline:
    def entry(self, **kwargs):
        defaults = dict(
            path="a.py", rule="r", message="m", justification="why"
        )
        defaults.update(kwargs)
        return BaselineEntry(**defaults)

    def test_split_matches_by_path_rule_message_not_line(self):
        baseline = Baseline([self.entry()])
        finding = Finding("a.py", 999, "r", "m")
        active, baselined, stale = baseline.split([finding])
        assert active == [] and baselined == [finding] and stale == []

    def test_split_is_multiset_aware(self):
        baseline = Baseline([self.entry()])
        twice = [Finding("a.py", 1, "r", "m"), Finding("a.py", 2, "r", "m")]
        active, baselined, stale = baseline.split(twice)
        assert len(active) == 1 and len(baselined) == 1 and stale == []

    def test_stale_entries_are_reported(self):
        baseline = Baseline([self.entry(), self.entry(path="b.py")])
        active, baselined, stale = baseline.split(
            [Finding("a.py", 1, "r", "m")]
        )
        assert active == [] and len(baselined) == 1
        assert [entry.path for entry in stale] == ["b.py"]

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline([self.entry()]).save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == [self.entry()]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == []

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            Baseline.load(path)


def make_mini_repo(tmp_path):
    """A tiny repo-shaped tree with exactly one lint finding."""
    package = tmp_path / "src" / "repro"
    package.mkdir(parents=True)
    (package / "__init__.py").write_text('__all__ = []\n')
    (package / "bad.py").write_text(
        '"""One violation."""\n\nimport pickle  # noqa\n'
    )
    return tmp_path


class TestCli:
    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("rng-hygiene", "protocol-exhaustive"):
            assert rule in out

    def test_unknown_rule_is_usage_error(self):
        assert lint_main(["--root", str(REPO_ROOT), "--select", "nope"]) == 2

    def test_findings_exit_one_with_report(self, tmp_path, capsys):
        root = make_mini_repo(tmp_path)
        assert lint_main(["--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "src/repro/bad.py:3: pickle-boundary:" in out

    def test_update_baseline_round_trip(self, tmp_path, capsys):
        root = make_mini_repo(tmp_path)
        assert lint_main(["--root", str(root), "--update-baseline"]) == 0
        assert (root / "lint-baseline.json").exists()
        assert lint_main(["--root", str(root)]) == 0
        # Fixing the violation leaves the entry stale: reported, not fatal.
        (root / "src" / "repro" / "bad.py").write_text('"""Fixed."""\n')
        assert lint_main(["--root", str(root)]) == 0
        assert "stale baseline entry" in capsys.readouterr().err

    def test_update_baseline_refuses_subset_runs(self, tmp_path):
        root = make_mini_repo(tmp_path)
        code = lint_main(
            ["--root", str(root), "--update-baseline", "src/repro/bad.py"]
        )
        assert code == 2

    def test_show_baselined(self, tmp_path, capsys):
        root = make_mini_repo(tmp_path)
        lint_main(["--root", str(root), "--update-baseline"])
        capsys.readouterr()
        assert lint_main(["--root", str(root), "--show-baselined"]) == 0
        assert "[baselined]" in capsys.readouterr().out

    def test_bad_root_is_usage_error(self, tmp_path):
        assert lint_main(["--root", str(tmp_path / "missing")]) == 2


class TestAstUtils:
    def test_import_map_and_qualified_name(self):
        import ast as ast_module

        tree = ast_module.parse(
            "import numpy as np\n"
            "from time import perf_counter as pc\n"
            "x = np.random.default_rng\n"
            "y = pc\n"
        )
        mapping = build_import_map(tree)
        assert mapping["np"] == "numpy"
        assert mapping["pc"] == "time.perf_counter"
        assigns = [
            node.value
            for node in tree.body
            if isinstance(node, ast_module.Assign)
        ]
        assert qualified_name(assigns[0], mapping) == (
            "numpy.random.default_rng"
        )
        assert qualified_name(assigns[1], mapping) == "time.perf_counter"

    def test_local_names_resolve_to_none(self):
        import ast as ast_module

        tree = ast_module.parse("t = object()\nv = t.time\n")
        mapping = build_import_map(tree)
        assert qualified_name(tree.body[1].value, mapping) is None


class TestShippedTreeIsClean:
    def test_repro_lint_is_clean_on_the_repository(self):
        result = run_lint(LintConfig().with_root(REPO_ROOT))
        formatted = "\n".join(f.format() for f in result.findings)
        assert result.clean, f"repro-lint found:\n{formatted}"
        assert result.files_checked > 100

    def test_baseline_is_empty_or_small_and_justified(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert len(baseline.entries) <= 10
        for entry in baseline.entries:
            assert entry.justification.strip()

    def test_fixture_tree_is_excluded_from_the_default_run(self):
        sources = collect_sources(LintConfig().with_root(REPO_ROOT))
        assert not any("fixtures" in source.rel for source in sources)
