"""The collector factory API: registry dispatch, config-driven construction.

``make_collector`` is the one public path from a config to a collect
strategy; ``build_collector`` keeps its original keyword surface for
callers that predate the factory.  Both dispatch through
``COLLECTOR_REGISTRY``, so a registered third-party backend constructs
exactly like the built-ins.
"""

from __future__ import annotations

import pytest

from repro import ExperimentConfig, TrainingConfig
from repro.fl import (
    COLLECT_BACKENDS,
    COLLECTOR_REGISTRY,
    ParallelCollector,
    ProcessCollector,
    SequentialCollector,
    build_collector,
    make_collector,
)
from repro.fl.transport import DistributedCollector


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(COLLECT_BACKENDS) <= set(COLLECTOR_REGISTRY.names())

    def test_unknown_backend_keeps_documented_error(self):
        with pytest.raises(ValueError, match="collect backend must be one of"):
            build_collector(2, "carrier-pigeon")

    def test_backend_names_are_case_insensitive(self):
        collector = build_collector(1, "Sequential")
        assert isinstance(collector, SequentialCollector)

    def test_third_party_backend_constructs_through_the_factory(self):
        class RecordingCollector(SequentialCollector):
            def __init__(self, options):
                super().__init__(fault_schedule=options["fault_schedule"])
                self.options = options

        COLLECTOR_REGISTRY.register("test_recording", RecordingCollector)
        try:
            collector = make_collector(
                backend="test_recording", wire_codec="int8"
            )
            assert isinstance(collector, RecordingCollector)
            assert collector.options["wire_codec"] == "int8"
        finally:
            COLLECTOR_REGISTRY._factories.pop("test_recording")


class TestBuildCollector:
    """The pre-factory keyword surface keeps working unchanged."""

    def test_sequential(self):
        assert isinstance(build_collector(1, "sequential"), SequentialCollector)

    def test_thread(self):
        collector = build_collector(4, "thread")
        assert isinstance(collector, ParallelCollector)
        assert collector.n_workers == 4

    def test_single_worker_degrades_to_sequential(self):
        assert isinstance(build_collector(1, "thread"), SequentialCollector)
        assert isinstance(build_collector(1, "process"), SequentialCollector)

    def test_process(self):
        collector = build_collector(2, "process")
        try:
            assert isinstance(collector, ProcessCollector)
        finally:
            collector.close()

    def test_distributed_passes_codec_and_timeouts(self):
        collector = build_collector(
            1,
            "distributed",
            workers=["127.0.0.1:1"],
            round_timeout=None,
            wire_codec="sign1bit",
        )
        assert isinstance(collector, DistributedCollector)
        assert collector.wire_codec == "sign1bit"
        assert all(conn.round_timeout is None for conn in collector._conns)

    def test_distributed_requires_workers(self):
        with pytest.raises(ValueError, match="requires workers"):
            build_collector(1, "distributed")


class TestMakeCollector:
    def test_defaults_without_a_config(self):
        # backend "thread" at n_workers=1 is the sequential strategy.
        assert isinstance(make_collector(), SequentialCollector)

    def test_from_training_config(self):
        config = TrainingConfig(collect_backend="thread", n_workers=3)
        collector = make_collector(config)
        assert isinstance(collector, ParallelCollector)
        assert collector.n_workers == 3

    def test_from_experiment_config(self):
        config = ExperimentConfig(
            training=TrainingConfig(collect_backend="thread", n_workers=2)
        )
        collector = make_collector(config)
        assert isinstance(collector, ParallelCollector)
        assert collector.n_workers == 2

    def test_config_wire_codec_flows_through(self):
        config = TrainingConfig(
            collect_backend="distributed",
            workers=["127.0.0.1:1"],
            wire_codec="topk",
        )
        collector = make_collector(config)
        assert isinstance(collector, DistributedCollector)
        assert collector.wire_codec == "topk"

    def test_overrides_beat_the_config(self):
        config = TrainingConfig(collect_backend="thread", n_workers=4)
        assert isinstance(
            make_collector(config, backend="sequential"), SequentialCollector
        )
        collector = make_collector(
            config,
            backend="distributed",
            workers=["127.0.0.1:1"],
            wire_codec="fp16",
        )
        assert collector.wire_codec == "fp16"

    def test_none_is_a_meaningful_override(self):
        # round_timeout=None means "wait forever" — the sentinel must not
        # mistake it for "not overridden".
        config = TrainingConfig(
            collect_backend="distributed",
            workers=["127.0.0.1:1"],
            round_timeout=30.0,
        )
        collector = make_collector(config, round_timeout=None)
        assert all(conn.round_timeout is None for conn in collector._conns)

    def test_distributed_still_requires_workers(self):
        config = TrainingConfig()
        with pytest.raises(ValueError, match="requires workers"):
            make_collector(config, backend="distributed")
