"""End-to-end defense-effectiveness tests.

These are slower integration tests that run small federated experiments and
assert the paper's headline qualitative claims:

* SignGuard keeps accuracy close to the no-attack baseline under stealthy
  attacks (LIE, ByzMean).
* SignGuard's filter excludes essentially all malicious gradients for those
  attacks (Table II's M column ~ 0).
* The undefended mean is steered further from the benign aggregate than
  SignGuard is.
"""

import pytest

from repro import (
    AttackConfig,
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    TrainingConfig,
)
from repro.fl import run_experiment


def small_config(attack, defense, seed=11):
    return ExperimentConfig(
        num_clients=15,
        seed=seed,
        data=DataConfig(dataset="mnist_like", num_train=600, num_test=200),
        training=TrainingConfig(
            model="mlp", rounds=12, batch_size=16, learning_rate=0.1, eval_every=3
        ),
        attack=AttackConfig(name=attack, byzantine_fraction=0.2),
        defense=DefenseConfig(name=defense),
    )


@pytest.fixture(scope="module")
def baseline_accuracy():
    return run_experiment(small_config("no_attack", "mean")).best_accuracy()


class TestSignGuardEffectiveness:
    def test_baseline_learns(self, baseline_accuracy):
        assert baseline_accuracy > 0.6

    @pytest.mark.parametrize("attack", ["lie", "byzmean", "min_max"])
    def test_signguard_tracks_baseline_under_stealthy_attacks(
        self, attack, baseline_accuracy
    ):
        recorder = run_experiment(small_config(attack, "signguard"))
        assert recorder.best_accuracy() > baseline_accuracy - 0.15

    @pytest.mark.parametrize("attack", ["lie", "byzmean"])
    def test_signguard_excludes_malicious_gradients(self, attack):
        recorder = run_experiment(small_config(attack, "signguard"))
        assert recorder.mean_byzantine_selection_rate() < 0.15
        assert recorder.mean_benign_selection_rate() > 0.6

    def test_signguard_sim_handles_sign_flip_better_than_plain(self):
        """Table II: the similarity feature lowers the sign-flip M rate."""
        plain = run_experiment(small_config("sign_flip", "signguard"))
        sim = run_experiment(small_config("sign_flip", "signguard_sim"))
        assert (
            sim.mean_byzantine_selection_rate()
            <= plain.mean_byzantine_selection_rate() + 0.05
        )

    def test_signguard_robust_under_random_attack(self, baseline_accuracy):
        recorder = run_experiment(small_config("random", "signguard"))
        assert recorder.best_accuracy() > baseline_accuracy - 0.2

    def test_no_attack_fidelity(self, baseline_accuracy):
        """Fidelity goal: without attacks SignGuard costs almost no accuracy."""
        recorder = run_experiment(small_config("no_attack", "signguard"))
        assert recorder.best_accuracy() > baseline_accuracy - 0.1


class TestDefenseComparison:
    def test_byzmean_steers_mean_more_than_signguard(self):
        """Attack-impact ordering: SignGuard should suffer no more than Mean."""
        mean_recorder = run_experiment(small_config("byzmean", "mean"))
        guard_recorder = run_experiment(small_config("byzmean", "signguard"))
        assert guard_recorder.best_accuracy() >= mean_recorder.best_accuracy() - 0.05

    def test_multikrum_gets_byzantine_hint_but_signguard_does_not_need_it(self):
        recorder = run_experiment(small_config("lie", "multi_krum"))
        assert recorder.best_accuracy() > 0.0  # runs to completion with the hint
