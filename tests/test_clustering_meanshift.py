"""Tests for Mean-Shift clustering (SignGuard's default filter backend)."""

import numpy as np
import pytest

from repro.clustering import MeanShift, estimate_bandwidth, get_bin_seeds
from repro.utils.batch import MAX_DENSE_PAIRWISE


@pytest.fixture
def feature_blobs(rng):
    """Majority blob + small offset blob, mimicking honest vs malicious features."""
    honest = rng.normal([0.6, 0.05, 0.35], 0.02, size=(16, 3))
    malicious = rng.normal([0.3, 0.05, 0.65], 0.02, size=(4, 3))
    return np.vstack([honest, malicious])


class TestEstimateBandwidth:
    def test_positive(self, feature_blobs):
        assert estimate_bandwidth(feature_blobs) > 0

    def test_single_point(self):
        assert estimate_bandwidth(np.zeros((1, 3))) == 1.0

    def test_identical_points_get_positive_floor(self):
        assert estimate_bandwidth(np.zeros((5, 3))) > 0

    def test_all_coincident_points_hit_exact_floor(self):
        # Every pairwise distance is zero, so there is no positive distance
        # to fall back on: the hard floor of 1e-3 applies.
        assert estimate_bandwidth(np.ones((6, 4))) == 1e-3

    def test_partially_coincident_points_use_min_positive_distance(self):
        # The quantile lands on a zero distance (most pairs coincide), so
        # the bandwidth falls back to the smallest positive distance.
        points = np.zeros((6, 2))
        points[5] = [0.25, 0.0]
        bandwidth = estimate_bandwidth(points, quantile=0.3)
        assert bandwidth == pytest.approx(0.25)

    def test_invalid_quantile_rejected(self, feature_blobs):
        with pytest.raises(ValueError):
            estimate_bandwidth(feature_blobs, quantile=0.0)


class TestBandwidthSubsampling:
    """Subquadratic row-subset sampling behind ``max_pairs``."""

    @staticmethod
    def blobs(n=400, seed=5):
        rng = np.random.default_rng(seed)
        half = n // 2
        return np.vstack(
            [
                rng.normal(0.0, 0.05, size=(half, 3)),
                rng.normal(1.0, 0.05, size=(n - half, 3)),
            ]
        )

    def test_deterministic_across_repeated_calls(self):
        # The sampler reseeds its own named stream per call: no hidden
        # state, identical inputs give identical bandwidths.
        x = self.blobs()
        first = estimate_bandwidth(x, max_pairs=1_000)
        assert estimate_bandwidth(x, max_pairs=1_000) == first

    def test_explicit_rng_is_honoured(self):
        x = self.blobs()
        a = estimate_bandwidth(x, max_pairs=1_000, rng=np.random.default_rng(9))
        b = estimate_bandwidth(x, max_pairs=1_000, rng=np.random.default_rng(9))
        c = estimate_bandwidth(x, max_pairs=1_000, rng=np.random.default_rng(10))
        assert a == b
        assert a != c

    def test_subsampled_close_to_dense_quantile(self):
        x = self.blobs(600)
        dense = estimate_bandwidth(x)
        subsampled = estimate_bandwidth(x, max_pairs=20_000)
        assert subsampled == pytest.approx(dense, rel=0.15)

    def test_budget_covering_all_pairs_stays_dense(self):
        # With the budget at (or above) the true pair count the sampler
        # never engages, so the result is exactly the dense estimate.
        x = self.blobs(60)
        dense = estimate_bandwidth(x)
        assert estimate_bandwidth(x, max_pairs=60 * 59 // 2) == dense

    def test_auto_engages_above_dense_threshold(self):
        # n > MAX_DENSE_PAIRWISE: the sampler engages without an explicit
        # budget and the result stays deterministic.
        rng = np.random.default_rng(0)
        x = rng.normal(size=(MAX_DENSE_PAIRWISE + 8, 3))
        bandwidth = estimate_bandwidth(x)
        assert bandwidth > 0
        assert estimate_bandwidth(x) == bandwidth

    def test_invalid_max_pairs_rejected(self):
        with pytest.raises(ValueError, match="max_pairs"):
            estimate_bandwidth(np.zeros((3, 2)), max_pairs=0)

    def test_coincident_subset_hits_exact_floor(self):
        # Every sampled distance is zero, so the 1e-3 hard floor applies
        # just like on the dense path.
        assert estimate_bandwidth(np.ones((50, 3)), max_pairs=10) == 1e-3

    def test_meanshift_validates_bandwidth_max_pairs(self):
        with pytest.raises(ValueError, match="bandwidth_max_pairs"):
            MeanShift(bandwidth_max_pairs=0)

    def test_meanshift_full_budget_matches_default_fit(self, feature_blobs):
        n = len(feature_blobs)
        baseline = MeanShift(quantile=0.5).fit(feature_blobs)
        capped = MeanShift(
            quantile=0.5, bandwidth_max_pairs=n * (n - 1) // 2
        ).fit(feature_blobs)
        np.testing.assert_array_equal(capped.labels_, baseline.labels_)
        np.testing.assert_array_equal(
            capped.cluster_centers_, baseline.cluster_centers_
        )


class TestMeanShift:
    def test_discovers_two_clusters(self, feature_blobs):
        model = MeanShift(bandwidth=0.1).fit(feature_blobs)
        assert model.n_clusters_ == 2

    def test_largest_cluster_is_majority(self, feature_blobs):
        model = MeanShift(bandwidth=0.1).fit(feature_blobs)
        largest = model.largest_cluster()
        assert set(largest) == set(range(16))

    def test_adaptive_bandwidth_separates(self, feature_blobs):
        model = MeanShift(quantile=0.5).fit(feature_blobs)
        largest = set(model.largest_cluster())
        # The honest majority must dominate the largest cluster.
        assert len(largest & set(range(16))) >= 14
        assert not largest.issuperset(set(range(16, 20))) or model.n_clusters_ == 1

    def test_single_cluster_when_bandwidth_is_huge(self, feature_blobs):
        model = MeanShift(bandwidth=100.0).fit(feature_blobs)
        assert model.n_clusters_ == 1
        assert len(model.largest_cluster()) == len(feature_blobs)

    def test_identical_points_form_one_cluster(self):
        model = MeanShift().fit(np.zeros((6, 3)))
        assert model.n_clusters_ == 1

    def test_identical_points_largest_cluster_covers_everyone(self):
        # The degenerate zero-bandwidth case must not split or drop points:
        # the positive floor keeps every coincident point in one cluster.
        model = MeanShift().fit(np.full((7, 2), 0.4))
        assert len(model.largest_cluster()) == 7
        assert np.all(model.labels_ == model.labels_[0])

    def test_labels_cover_all_samples(self, feature_blobs):
        model = MeanShift(bandwidth=0.1).fit(feature_blobs)
        assert len(model.labels_) == len(feature_blobs)
        assert model.labels_.min() >= 0

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            MeanShift().fit(np.zeros((0, 3)))

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            MeanShift(bandwidth=-1.0)

    def test_largest_cluster_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MeanShift().largest_cluster()


class TestBinSeeding:
    """MeanShift(bin_seeding=True): sklearn-style grid-seeded acceleration."""

    def _canonical(self, labels):
        """Relabel clusters by first appearance so partitions compare equal."""
        seen = {}
        return tuple(seen.setdefault(int(label), len(seen)) for label in labels)

    def test_get_bin_seeds_snaps_to_grid(self):
        x = np.array([[0.0, 0.0], [0.1, 0.1], [1.0, 1.0]])
        seeds = get_bin_seeds(x, bin_size=0.5)
        expected = {(0.0, 0.0), (1.0, 1.0)}
        assert {tuple(seed) for seed in seeds} == expected

    def test_get_bin_seeds_min_bin_freq_filters_sparse_cells(self):
        x = np.array([[0.0, 0.0], [0.05, 0.0], [3.0, 3.0]])
        seeds = get_bin_seeds(x, bin_size=0.5, min_bin_freq=2)
        assert {tuple(seed) for seed in seeds} == {(0.0, 0.0)}

    def test_get_bin_seeds_degenerate_returns_points(self):
        # Binning that cannot reduce the seed count returns the samples.
        x = np.array([[0.0, 0.0], [10.0, 10.0]])
        seeds = get_bin_seeds(x, bin_size=0.5)
        assert np.array_equal(seeds, x)

    def test_get_bin_seeds_invalid_bin_size(self):
        with pytest.raises(ValueError, match="bin_size"):
            get_bin_seeds(np.zeros((2, 2)), bin_size=0.0)

    def test_invalid_min_bin_freq_rejected(self):
        with pytest.raises(ValueError, match="min_bin_freq"):
            MeanShift(bin_seeding=True, min_bin_freq=0)

    def test_equivalent_partition_on_signguard_features(self):
        # The acceptance contract: on SignGuard's sign-statistics feature
        # distributions the binned path must discover the same partition
        # (up to cluster numbering) and the same trusted majority.
        for seed in range(5):
            rng = np.random.default_rng(seed)
            features = np.vstack(
                [
                    rng.normal([0.6, 0.05, 0.35], 0.02, size=(80, 3)),
                    rng.normal([0.3, 0.05, 0.65], 0.02, size=(20, 3)),
                ]
            )
            unbinned = MeanShift(quantile=0.5).fit(features)
            binned = MeanShift(quantile=0.5, bin_seeding=True).fit(features)
            assert binned.n_clusters_ == unbinned.n_clusters_, seed
            assert self._canonical(binned.labels_) == self._canonical(
                unbinned.labels_
            ), seed
            np.testing.assert_array_equal(
                binned.largest_cluster(), unbinned.largest_cluster()
            )

    def test_equivalent_with_similarity_augmented_features(self):
        # The -Sim/-Dist variants append a 4th feature column; equivalence
        # must hold there too.
        rng = np.random.default_rng(7)
        features = np.hstack(
            [
                np.vstack(
                    [
                        rng.normal([0.55, 0.1, 0.35], 0.03, size=(40, 3)),
                        rng.normal([0.35, 0.1, 0.55], 0.03, size=(10, 3)),
                    ]
                ),
                np.concatenate(
                    [rng.normal(0.9, 0.02, 40), rng.normal(-0.8, 0.02, 10)]
                )[:, None],
            ]
        )
        unbinned = MeanShift(quantile=0.5).fit(features)
        binned = MeanShift(quantile=0.5, bin_seeding=True).fit(features)
        assert self._canonical(binned.labels_) == self._canonical(unbinned.labels_)

    def test_identical_points_one_cluster(self):
        model = MeanShift(bin_seeding=True).fit(np.full((6, 3), 0.4))
        assert model.n_clusters_ == 1
        assert len(model.largest_cluster()) == 6

    def test_explicit_bandwidth_skips_full_pairwise_distances(self):
        rng = np.random.default_rng(0)
        features = rng.normal(0.5, 0.02, size=(50, 3))
        model = MeanShift(bandwidth=0.2, bin_seeding=True).fit(features)
        assert model.n_clusters_ >= 1
        assert len(model.labels_) == 50

    def test_filter_backend_matches_unbinned_selection(self):
        from repro.core.filters import SignClusteringFilter
        from repro.utils.batch import GradientBatch

        rng = np.random.default_rng(3)
        signal = rng.normal(0.05, 1.0, size=500)
        honest = signal[None, :] + rng.normal(0, 0.3, size=(40, 500))
        malicious = -signal[None, :] + rng.normal(0, 0.05, size=(10, 500))
        gradients = GradientBatch(np.vstack([honest, malicious]))
        plain = SignClusteringFilter(clustering="meanshift").apply(
            gradients, rng=np.random.default_rng(0)
        )
        binned = SignClusteringFilter(clustering="meanshift_binned").apply(
            gradients, rng=np.random.default_rng(0)
        )
        np.testing.assert_array_equal(
            plain.selected_indices, binned.selected_indices
        )

    def test_filter_rejects_unknown_clustering(self):
        from repro.core.filters import SignClusteringFilter

        with pytest.raises(ValueError, match="clustering"):
            SignClusteringFilter(clustering="meanshift_turbo")


class TestGridNeighborhood:
    """MeanShift(neighborhood="grid"): grid-pruned per-iteration range queries."""

    def _canonical(self, labels):
        seen = {}
        return tuple(seen.setdefault(int(label), len(seen)) for label in labels)

    def test_candidates_are_a_superset_of_the_true_neighbourhood(self):
        from repro.clustering import GridNeighborhood

        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        radius = 0.7
        grid = GridNeighborhood(x, radius)
        for query in x[:20]:
            candidates = grid.candidates(grid.cell_of(query[None, :])[0])
            true_neighbours = np.flatnonzero(
                np.linalg.norm(x - query, axis=1) <= radius
            )
            assert np.all(np.isin(true_neighbours, candidates))

    def test_invalid_cell_size_rejected(self):
        from repro.clustering import GridNeighborhood

        with pytest.raises(ValueError, match="cell_size"):
            GridNeighborhood(np.zeros((3, 2)), 0.0)

    def test_invalid_neighborhood_rejected(self):
        with pytest.raises(ValueError, match="neighborhood"):
            MeanShift(neighborhood="kdtree")

    def test_equivalent_partition_on_signguard_features(self):
        # The acceptance contract of the satellite: grid-pruned range
        # queries must discover the same partition as the unpruned fit
        # (pruning is exact; only summation order differs).
        for seed in range(5):
            rng = np.random.default_rng(seed)
            features = np.vstack(
                [
                    rng.normal([0.6, 0.05, 0.35], 0.02, size=(80, 3)),
                    rng.normal([0.3, 0.05, 0.65], 0.02, size=(20, 3)),
                ]
            )
            dense = MeanShift(quantile=0.5).fit(features)
            grid = MeanShift(quantile=0.5, neighborhood="grid").fit(features)
            assert grid.n_clusters_ == dense.n_clusters_, seed
            assert self._canonical(grid.labels_) == self._canonical(
                dense.labels_
            ), seed
            np.testing.assert_array_equal(
                grid.largest_cluster(), dense.largest_cluster()
            )

    def test_equivalent_combined_with_bin_seeding(self):
        rng = np.random.default_rng(7)
        features = np.vstack(
            [
                rng.normal([0.6, 0.05, 0.35], 0.02, size=(160, 3)),
                rng.normal([0.3, 0.05, 0.65], 0.02, size=(40, 3)),
            ]
        )
        binned = MeanShift(quantile=0.5, bin_seeding=True).fit(features)
        both = MeanShift(
            quantile=0.5, bin_seeding=True, neighborhood="grid"
        ).fit(features)
        assert self._canonical(both.labels_) == self._canonical(binned.labels_)
        np.testing.assert_array_equal(
            both.largest_cluster(), binned.largest_cluster()
        )

    def test_high_dimensional_features_fall_back_to_dense(self):
        # 3**d neighbour cells degenerate past GRID_MAX_DIM dims: the fit
        # must silently use dense distances and still produce a partition.
        rng = np.random.default_rng(1)
        features = rng.normal(size=(30, 12))
        dense = MeanShift(bandwidth=2.0).fit(features)
        grid = MeanShift(bandwidth=2.0, neighborhood="grid").fit(features)
        assert self._canonical(grid.labels_) == self._canonical(dense.labels_)

    def test_identical_points_one_cluster(self):
        features = np.full((24, 3), 0.5)
        model = MeanShift(neighborhood="grid").fit(features)
        assert model.n_clusters_ == 1

    def test_filter_backend_matches_unpruned_selection(self):
        from repro.core.filters import SignClusteringFilter
        from repro.utils.batch import GradientBatch

        rng = np.random.default_rng(3)
        signal = rng.normal(0.05, 1.0, size=500)
        honest = signal[None, :] + rng.normal(0, 0.3, size=(40, 500))
        malicious = -signal[None, :] + rng.normal(0, 0.05, size=(10, 500))
        gradients = GradientBatch(np.vstack([honest, malicious]))
        plain = SignClusteringFilter(clustering="meanshift").apply(
            gradients, rng=np.random.default_rng(0)
        )
        pruned = SignClusteringFilter(clustering="meanshift_grid").apply(
            gradients, rng=np.random.default_rng(0)
        )
        np.testing.assert_array_equal(
            plain.selected_indices, pruned.selected_indices
        )
