"""Tests for Mean-Shift clustering (SignGuard's default filter backend)."""

import numpy as np
import pytest

from repro.clustering import MeanShift, estimate_bandwidth


@pytest.fixture
def feature_blobs(rng):
    """Majority blob + small offset blob, mimicking honest vs malicious features."""
    honest = rng.normal([0.6, 0.05, 0.35], 0.02, size=(16, 3))
    malicious = rng.normal([0.3, 0.05, 0.65], 0.02, size=(4, 3))
    return np.vstack([honest, malicious])


class TestEstimateBandwidth:
    def test_positive(self, feature_blobs):
        assert estimate_bandwidth(feature_blobs) > 0

    def test_single_point(self):
        assert estimate_bandwidth(np.zeros((1, 3))) == 1.0

    def test_identical_points_get_positive_floor(self):
        assert estimate_bandwidth(np.zeros((5, 3))) > 0

    def test_all_coincident_points_hit_exact_floor(self):
        # Every pairwise distance is zero, so there is no positive distance
        # to fall back on: the hard floor of 1e-3 applies.
        assert estimate_bandwidth(np.ones((6, 4))) == 1e-3

    def test_partially_coincident_points_use_min_positive_distance(self):
        # The quantile lands on a zero distance (most pairs coincide), so
        # the bandwidth falls back to the smallest positive distance.
        points = np.zeros((6, 2))
        points[5] = [0.25, 0.0]
        bandwidth = estimate_bandwidth(points, quantile=0.3)
        assert bandwidth == pytest.approx(0.25)

    def test_invalid_quantile_rejected(self, feature_blobs):
        with pytest.raises(ValueError):
            estimate_bandwidth(feature_blobs, quantile=0.0)


class TestMeanShift:
    def test_discovers_two_clusters(self, feature_blobs):
        model = MeanShift(bandwidth=0.1).fit(feature_blobs)
        assert model.n_clusters_ == 2

    def test_largest_cluster_is_majority(self, feature_blobs):
        model = MeanShift(bandwidth=0.1).fit(feature_blobs)
        largest = model.largest_cluster()
        assert set(largest) == set(range(16))

    def test_adaptive_bandwidth_separates(self, feature_blobs):
        model = MeanShift(quantile=0.5).fit(feature_blobs)
        largest = set(model.largest_cluster())
        # The honest majority must dominate the largest cluster.
        assert len(largest & set(range(16))) >= 14
        assert not largest.issuperset(set(range(16, 20))) or model.n_clusters_ == 1

    def test_single_cluster_when_bandwidth_is_huge(self, feature_blobs):
        model = MeanShift(bandwidth=100.0).fit(feature_blobs)
        assert model.n_clusters_ == 1
        assert len(model.largest_cluster()) == len(feature_blobs)

    def test_identical_points_form_one_cluster(self):
        model = MeanShift().fit(np.zeros((6, 3)))
        assert model.n_clusters_ == 1

    def test_identical_points_largest_cluster_covers_everyone(self):
        # The degenerate zero-bandwidth case must not split or drop points:
        # the positive floor keeps every coincident point in one cluster.
        model = MeanShift().fit(np.full((7, 2), 0.4))
        assert len(model.largest_cluster()) == 7
        assert np.all(model.labels_ == model.labels_[0])

    def test_labels_cover_all_samples(self, feature_blobs):
        model = MeanShift(bandwidth=0.1).fit(feature_blobs)
        assert len(model.labels_) == len(feature_blobs)
        assert model.labels_.min() >= 0

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            MeanShift().fit(np.zeros((0, 3)))

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            MeanShift(bandwidth=-1.0)

    def test_largest_cluster_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MeanShift().largest_cluster()
