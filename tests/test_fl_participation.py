"""Tests for the participation-aware round engine.

Contracts under test:

* :class:`RoundPlan` / the schedules: sorted ids, cohort partitioning,
  at-least-one-active resurrection, reproducibility, and the
  full-participation zero-randomness guarantee.
* Collect backends handle arbitrary (non-contiguous) client subsets —
  bit-identically to each other, with BatchNorm statistics replayed in
  plan order, with non-sampled clients' RNG streams untouched, and with
  the variable-width round buffer NaN-invalidated on failure.
* The simulation threads the plan through every layer: cohort-scoped
  attack context, scaled Byzantine hint, global-id selection records,
  profiler annotations — and ``participation="full"`` (the default) is
  bit-identical to a plain pre-participation run on every backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataConfig, DefenseConfig, ExperimentConfig, TrainingConfig
from repro.aggregators import MeanAggregator
from repro.aggregators.base import Aggregator, AggregationResult, all_indices
from repro.attacks import NoAttack, SignFlipAttack
from repro.attacks.base import Attack
from repro.core import SignGuard
from repro.data.partition import iid_partition
from repro.data.synthetic_images import make_mnist_like
from repro.fl.collector import (
    ParallelCollector,
    ProcessCollector,
    SequentialCollector,
    resolve_rows,
)
from repro.fl.experiment import run_experiment
from repro.fl.participation import (
    FixedCohortParticipation,
    FullParticipation,
    RoundPlan,
    UniformParticipation,
    build_participation,
    scaled_byzantine_hint,
)
from repro.fl.server import FederatedServer
from repro.fl.simulation import FederatedSimulation, build_clients
from repro.nn.models import build_model
from repro.utils.rng import RngFactory
from test_fl_parallel_collect import BatchNormMLP, make_clients, make_model


class TestRoundPlan:
    def make_plan(self, **overrides):
        fields = dict(
            round_index=0,
            population_size=10,
            cohort=[1, 3, 5, 7],
            active=[1, 5],
            dropped=[3],
            stragglers=[7],
            weights=[0.5, 0.5],
        )
        fields.update(overrides)
        return RoundPlan(**fields)

    def test_partition_accounting(self):
        plan = self.make_plan()
        assert plan.cohort_size == 4
        assert plan.num_active == 2
        assert plan.num_dropped == 1
        assert plan.num_stragglers == 1
        np.testing.assert_array_equal(plan.computing, [1, 5, 7])
        assert not plan.is_full_round

    def test_ids_sorted_on_construction(self):
        plan = self.make_plan(cohort=[7, 1, 5, 3], active=[5, 1])
        np.testing.assert_array_equal(plan.cohort, [1, 3, 5, 7])
        np.testing.assert_array_equal(plan.active, [1, 5])

    def test_byzantine_positions_are_cohort_local(self):
        plan = self.make_plan()
        # Clients 5 and 9 are Byzantine; only 5 is active, at row 1.
        np.testing.assert_array_equal(plan.byzantine_positions([5, 9]), [1])
        # Dropped/straggling Byzantine clients do not appear.
        np.testing.assert_array_equal(plan.byzantine_positions([3, 7]), [])

    def test_partition_violations_rejected(self):
        with pytest.raises(ValueError, match="partition"):
            self.make_plan(dropped=[2])  # 2 not in cohort
        with pytest.raises(ValueError, match="disjoint"):
            self.make_plan(dropped=[3, 5], weights=[0.5, 0.5])
        with pytest.raises(ValueError, match="at least one active"):
            self.make_plan(active=[], dropped=[1, 3, 5, 7], stragglers=[], weights=[])
        with pytest.raises(ValueError, match="duplicate"):
            self.make_plan(cohort=[1, 1, 3, 5])
        with pytest.raises(ValueError, match="outside"):
            self.make_plan(cohort=[1, 3, 5, 77])

    def test_weights_validated(self):
        with pytest.raises(ValueError, match="weights"):
            self.make_plan(weights=[1.0])
        with pytest.raises(ValueError, match="sum to 1"):
            self.make_plan(weights=[0.9, 0.9])

    def test_weights_follow_active_sort(self):
        # weights[k] belongs to active[k] as given; sorting must permute
        # them together or client 1 would silently get client 5's weight.
        plan = self.make_plan(active=[5, 1], weights=[0.7, 0.3])
        np.testing.assert_array_equal(plan.active, [1, 5])
        np.testing.assert_allclose(plan.weights, [0.3, 0.7])


class TestSchedules:
    def test_full_participation_consumes_no_randomness(self):
        schedule = FullParticipation()
        for round_index in range(3):
            plan = schedule.plan(round_index, 7)
            np.testing.assert_array_equal(plan.cohort, np.arange(7))
            np.testing.assert_array_equal(plan.active, np.arange(7))
            assert plan.is_full_round
            assert plan.num_dropped == plan.num_stragglers == 0

    def test_uniform_cohort_size_and_reproducibility(self):
        a = UniformParticipation(0.3, rng=np.random.default_rng(5))
        b = UniformParticipation(0.3, rng=np.random.default_rng(5))
        for round_index in range(5):
            plan_a = a.plan(round_index, 20)
            plan_b = b.plan(round_index, 20)
            assert plan_a.cohort_size == 6
            np.testing.assert_array_equal(plan_a.cohort, plan_b.cohort)
        distinct = {tuple(a.plan(r, 20).cohort) for r in range(10)}
        assert len(distinct) > 1  # the cohort actually changes per round

    def test_uniform_fraction_validated(self):
        with pytest.raises(ValueError, match="participation_fraction"):
            UniformParticipation(0.0)
        with pytest.raises(ValueError, match="participation_fraction"):
            UniformParticipation(1.5)

    def test_fixed_cohort(self):
        schedule = FixedCohortParticipation(4, rng=np.random.default_rng(0))
        plan = schedule.plan(0, 10)
        assert plan.cohort_size == 4
        with pytest.raises(ValueError, match="exceeds the population"):
            schedule.plan(0, 3)

    def test_dropout_and_stragglers_partition_cohort(self):
        schedule = UniformParticipation(
            0.5, dropout_rate=0.3, straggler_rate=0.3, rng=np.random.default_rng(1)
        )
        saw_dropout = saw_straggler = False
        for round_index in range(30):
            plan = schedule.plan(round_index, 20)
            combined = np.sort(
                np.concatenate([plan.active, plan.dropped, plan.stragglers])
            )
            np.testing.assert_array_equal(combined, plan.cohort)
            assert plan.num_active >= 1
            saw_dropout |= plan.num_dropped > 0
            saw_straggler |= plan.num_stragglers > 0
        assert saw_dropout and saw_straggler

    def test_all_failed_round_resurrects_one_client(self):
        schedule = FullParticipation(
            dropout_rate=0.99, rng=np.random.default_rng(0)
        )
        for round_index in range(50):
            plan = schedule.plan(round_index, 3)
            assert plan.num_active >= 1

    def test_rate_bounds_validated(self):
        with pytest.raises(ValueError, match="dropout_rate"):
            FullParticipation(dropout_rate=-0.1)
        with pytest.raises(ValueError, match="< 1"):
            FullParticipation(straggler_rate=1.0)

    def test_build_participation_names(self):
        assert isinstance(build_participation("full"), FullParticipation)
        assert isinstance(
            build_participation("uniform", participation_fraction=0.2),
            UniformParticipation,
        )
        assert isinstance(
            build_participation("fixed_cohort", cohort_size=3),
            FixedCohortParticipation,
        )
        with pytest.raises(ValueError, match="cohort_size"):
            build_participation("fixed_cohort")
        with pytest.raises(ValueError, match="participation"):
            build_participation("every_other_tuesday")

    def test_scaled_byzantine_hint(self):
        assert scaled_byzantine_hint(None, 10, 100) is None
        assert scaled_byzantine_hint(20, 100, 100) == 20  # full round: unchanged
        assert scaled_byzantine_hint(20, 20, 100) == 4
        assert scaled_byzantine_hint(3, 7, 10) == 2


class TestCollectSubsets:
    """Non-contiguous subsets through all three backends."""

    ROWS = [0, 2, 5]

    def backends(self):
        return [
            ("sequential", SequentialCollector),
            ("thread", lambda: ParallelCollector(2)),
            ("process", lambda: ProcessCollector(2)),
        ]

    def test_subset_rows_match_full_collect_across_backends(self):
        # Round 1 from a fresh population: client i's gradient depends only
        # on its own RNG stream, so the subset buffer must equal the
        # corresponding rows of a full collect, on every backend.
        full_clients = make_clients(6)
        model = make_model()
        dim = model.num_parameters()
        full = np.empty((6, dim))
        SequentialCollector().collect(full_clients, model, full)
        for name, make_collector in self.backends():
            clients = make_clients(6)
            out = np.empty((len(self.ROWS), dim))
            with make_collector() as collector:
                collector.collect(clients, model, out, rows=self.ROWS)
            assert np.array_equal(out, full[self.ROWS]), name

    def test_subset_collect_identical_across_backends_over_rounds(self):
        def run(make_collector):
            clients = make_clients(6)
            model = make_model()
            buffers = []
            with make_collector() as collector:
                for rows in ([0, 2, 5], [1, 2, 4], [3], [0, 1, 2, 3, 4, 5]):
                    out = np.empty((len(rows), model.num_parameters()))
                    collector.collect(clients, model, out, rows=rows)
                    buffers.append(out.copy())
            return buffers, [c.last_loss for c in clients]

        reference, ref_losses = run(SequentialCollector)
        for name, make_collector in self.backends()[1:]:
            buffers, losses = run(make_collector)
            for ref, got in zip(reference, buffers):
                assert np.array_equal(ref, got), name
            assert losses == ref_losses, name

    def test_non_sampled_client_rng_streams_untouched(self):
        for name, make_collector in self.backends():
            clients = make_clients(6)
            spectator_states = [
                clients[i].loader._rng.bit_generator.state for i in (1, 3, 4)
            ]
            model = make_model()
            out = np.empty((len(self.ROWS), model.num_parameters()))
            with make_collector() as collector:
                collector.collect(clients, model, out, rows=self.ROWS)
            for i, before in zip((1, 3, 4), spectator_states):
                assert clients[i].loader._rng.bit_generator.state == before, (
                    f"{name}: client {i} RNG advanced without being sampled"
                )

    def test_batchnorm_stats_replayed_in_plan_order_for_subsets(self):
        def run(make_collector):
            clients = make_clients(6)
            model = BatchNormMLP()
            with make_collector() as collector:
                for rows in ([0, 2, 5], [1, 3, 4, 5]):
                    out = np.empty((len(rows), model.num_parameters()))
                    collector.collect(clients, model, out, rows=rows)
            return {k: v.copy() for k, v in model.state_dict().items()}

        reference = run(SequentialCollector)
        for name, make_collector in self.backends()[1:]:
            state = run(make_collector)
            for key in reference:
                assert np.array_equal(reference[key], state[key]), f"{name}:{key}"

    def test_variable_width_buffer_nan_invalidated_on_failure(self):
        from repro.fl.client import BenignClient

        class ExplodingClient(BenignClient):
            def compute_gradient(self, model):
                raise RuntimeError("boom")

        for name, make_collector in self.backends():
            clients = make_clients(6)
            clients[2] = ExplodingClient(
                2, clients[2].dataset, batch_size=4, rng=np.random.default_rng(0)
            )
            model = make_model()
            out = np.full((3, model.num_parameters()), 7.0)
            with make_collector() as collector:
                with pytest.raises(RuntimeError, match="boom"):
                    collector.collect(clients, model, out, rows=[0, 2, 5])
            assert not np.any(out == 7.0), name
            assert np.all(np.isnan(out[1])), name  # the failed client's row

    def test_apply_batch_stats_false_leaves_global_model_untouched(self):
        # Straggler semantics: the gradient computes (RNG advances) but no
        # BatchNorm running-statistics update reaches the global model.
        for name, make_collector in self.backends():
            clients = make_clients(6)
            model = BatchNormMLP()
            before = {k: v.copy() for k, v in model.state_dict().items()}
            out = np.empty((2, model.num_parameters()))
            with make_collector() as collector:
                collector.collect(
                    clients, model, out, rows=[1, 4], apply_batch_stats=False
                )
            assert np.all(np.isfinite(out)), name
            after = model.state_dict()
            for key in before:
                assert np.array_equal(before[key], after[key]), f"{name}:{key}"

    def test_sampled_shm_rows_still_invalidated_in_process_backend(self):
        from repro.fl.client import BenignClient

        class ExplodingClient(BenignClient):
            def compute_gradient(self, model):
                raise RuntimeError("boom")

        clients = make_clients(6)
        clients[4] = ExplodingClient(
            4, clients[4].dataset, batch_size=4, rng=np.random.default_rng(0)
        )
        model = make_model()
        collector = ProcessCollector(2)
        try:
            # A successful sampled round, then a failing one over different
            # rows: the failed row must come back NaN, not a stale value
            # from the earlier round's shared-memory contents.
            warm = np.empty((2, model.num_parameters()))
            collector.collect(clients, model, warm, rows=[0, 2])
            out = np.full((2, model.num_parameters()), 7.0)
            with pytest.raises(RuntimeError, match="boom"):
                collector.collect(clients, model, out, rows=[2, 4])
        finally:
            collector.close()
        assert np.all(np.isnan(out[1]))
        assert not np.any(out == 7.0)

    def test_process_workers_persist_across_varying_subsets(self):
        clients = make_clients(6)
        model = make_model()
        collector = ProcessCollector(2)
        try:
            out = np.empty((3, model.num_parameters()))
            collector.collect(clients, model, out, rows=[0, 2, 5])
            pids = [p.pid for p in collector._procs]
            out_full = np.empty((6, model.num_parameters()))
            collector.collect(clients, model, out_full)
            out_small = np.empty((1, model.num_parameters()))
            collector.collect(clients, model, out_small, rows=[4])
            assert [p.pid for p in collector._procs] == pids
        finally:
            collector.close()
        assert np.all(np.isfinite(out_small))

    def test_resolve_rows_validation(self):
        clients = make_clients(4)
        model = make_model()
        dim = model.num_parameters()
        with pytest.raises(ValueError, match="strictly increasing"):
            resolve_rows(clients, np.empty((2, dim)), [2, 1])
        with pytest.raises(ValueError, match="out of range"):
            resolve_rows(clients, np.empty((2, dim)), [0, 9])
        with pytest.raises(ValueError, match="at least one"):
            resolve_rows(clients, np.empty((0, dim)), [])
        with pytest.raises(ValueError, match="rows"):
            resolve_rows(clients, np.empty((3, dim)), [0, 1])
        with pytest.raises(ValueError, match="buffer"):
            resolve_rows(clients, np.empty((3, dim)), None)


@pytest.fixture(scope="module")
def split():
    return make_mnist_like(num_train=300, num_test=80, rng=0)


def make_simulation(
    split, attack, aggregator, num_clients=10, byzantine=(0, 1), **kwargs
):
    rng_factory = RngFactory(0)
    partitions = iid_partition(split.train, num_clients, rng=rng_factory.make("p"))
    clients = build_clients(
        split.train,
        partitions,
        byzantine,
        batch_size=16,
        poison_labels=attack.poisons_data,
        rng_factory=rng_factory,
    )
    model = build_model("mlp", split.spec, rng=0, params={"hidden_dims": (16,)})
    server = FederatedServer(
        model, aggregator, learning_rate=0.1, num_byzantine_hint=len(byzantine), rng=0
    )
    return FederatedSimulation(
        server,
        clients,
        attack,
        split.test,
        attack_rng=np.random.default_rng(0),
        **kwargs,
    )


class RecordingAttack(Attack):
    """Captures the context the simulation hands to the attacker."""

    name = "recording"

    def __init__(self):
        self.contexts = []

    def apply(self, honest_gradients, context):
        self.contexts.append(context)
        return NoAttack().apply(honest_gradients, context)


class HintRecordingAggregator(Aggregator):
    name = "hint_recorder"

    def __init__(self):
        self.hints = []
        self.row_counts = []
        self.weights = []

    def aggregate(self, gradients, context=None):
        self.hints.append(context.num_byzantine_hint)
        self.row_counts.append(len(gradients))
        self.weights.append(context.extra.get("participation_weights"))
        return AggregationResult(
            gradient=gradients.mean(axis=0), selected_indices=all_indices(gradients)
        )


class TestSimulationParticipation:
    def test_full_default_matches_explicit_schedule(self, split):
        results = []
        for participation in ("full", FullParticipation()):
            simulation = make_simulation(
                split, SignFlipAttack(), SignGuard(), participation=participation
            )
            recorder = simulation.run(3)
            results.append(
                [
                    (r.train_loss, r.test_accuracy, r.selected_clients)
                    for r in recorder.rounds
                ]
            )
        assert results[0] == results[1]

    def test_full_round_records_population_cohort(self, split):
        simulation = make_simulation(split, SignFlipAttack(), SignGuard())
        record = simulation.run(1).rounds[0]
        assert record.cohort_size == 10
        assert record.num_dropped == 0 and record.num_stragglers == 0
        # A population-sized cohort is derivable from cohort_size; explicit
        # ids are only serialized for strict-subset cohorts.
        assert record.cohort_clients == ()
        assert record.num_reporting == 10

    def test_sampled_round_scopes_attack_context_to_cohort(self, split):
        attack = RecordingAttack()
        simulation = make_simulation(
            split,
            attack,
            MeanAggregator(),
            byzantine=(0, 1, 2),
            participation=UniformParticipation(0.5, rng=np.random.default_rng(7)),
        )
        recorder = simulation.run(4)
        for context, record in zip(attack.contexts, recorder.rounds):
            assert context.num_clients == record.num_reporting == 5
            assert context.population_size == 10
            assert len(context.cohort_client_ids) == context.num_clients
            # Byzantine indices are positions within the cohort matrix...
            if context.num_byzantine:
                assert context.byzantine_indices.max() < context.num_clients
            # ...and map back to sampled Byzantine client ids.
            np.testing.assert_array_equal(
                context.cohort_client_ids[context.byzantine_indices],
                [i for i in (0, 1, 2) if i in context.cohort_client_ids],
            )
            assert record.byzantine_total == context.num_byzantine

    def test_selected_clients_are_global_ids(self, split):
        simulation = make_simulation(
            split,
            NoAttack(),
            MeanAggregator(),
            byzantine=(),
            participation=UniformParticipation(0.3, rng=np.random.default_rng(1)),
        )
        recorder = simulation.run(3)
        for record in recorder.rounds:
            assert set(record.selected_clients) <= set(record.cohort_clients)
            assert len(record.selected_clients) == record.num_reporting == 3

    def test_byzantine_hint_scaled_to_cohort(self, split):
        aggregator = HintRecordingAggregator()
        simulation = make_simulation(
            split,
            NoAttack(),
            aggregator,
            byzantine=(0, 1),
            participation=UniformParticipation(0.5, rng=np.random.default_rng(3)),
        )
        simulation.run(2)
        assert aggregator.row_counts == [5, 5]
        assert aggregator.hints == [1, 1]  # round(2 * 5/10)
        for weights, rows in zip(aggregator.weights, aggregator.row_counts):
            np.testing.assert_allclose(weights, np.full(rows, 1 / rows))

    def test_all_byzantine_cohort_stays_finite_under_statistics_attacks(self, split):
        # A sampled cohort can be 100% Byzantine — statistics-based attacks
        # must fall back to the colluders' own honest gradients instead of
        # taking the mean/std of an empty benign matrix (NaN poisoning).
        from repro.attacks import ByzMeanAttack, LittleIsEnoughAttack

        class AllByzantineCohort(FullParticipation):
            def _sample_cohort(self, round_index, population_size):
                return np.arange(3)  # exactly the Byzantine clients

        for attack in (LittleIsEnoughAttack(z=0.3), ByzMeanAttack()):
            simulation = make_simulation(
                split,
                attack,
                MeanAggregator(),
                byzantine=(0, 1, 2),
                participation=AllByzantineCohort(),
            )
            recorder = simulation.run(2)
            for record in recorder.rounds:
                assert np.isfinite(record.train_loss)
            # The model survives: every parameter is still finite.
            flat = np.concatenate(
                [p.data.ravel() for p in simulation.model.parameters()]
            )
            assert np.all(np.isfinite(flat)), attack.name

    def test_lie_adaptive_z_survives_degenerate_cohorts(self):
        # z=None (the adaptive z_max variant) must not crash when a sampled
        # cohort has no benign majority to hide among: it degrades to z=0
        # (submit the plain mean) instead of raising mid-run.
        from repro.attacks import LittleIsEnoughAttack
        from repro.attacks.base import AttackContext

        rng = np.random.default_rng(0)
        attack = LittleIsEnoughAttack(z=None)
        for n, byzantine in ((3, [0, 1, 2]), (1, [0])):
            honest = rng.normal(size=(n, 8))
            context = AttackContext.make(
                num_clients=n, byzantine_indices=byzantine, rng=0
            )
            submitted = attack.apply(honest, context)
            assert np.all(np.isfinite(submitted))
            np.testing.assert_allclose(submitted[0], honest.mean(axis=0))

    def test_all_byzantine_cohort_byzmean_still_steers_mean_exactly(self):
        # Eq. 8's defining property — the submitted mean equals the target —
        # must survive the all-Byzantine corner: the empty benign sum is
        # legitimately zero, and only LIE's mean/std estimate falls back.
        from repro.attacks import ByzMeanAttack
        from repro.attacks.base import AttackContext

        rng = np.random.default_rng(0)
        honest = rng.normal(size=(4, 30))
        context = AttackContext.make(
            num_clients=4, byzantine_indices=[0, 1, 2, 3], rng=0
        )
        attack = ByzMeanAttack()
        target = attack._target_gradient(honest, context)
        submitted = attack.apply(honest, context)
        assert np.all(np.isfinite(submitted))
        np.testing.assert_allclose(submitted.mean(axis=0), target)

    def test_straggler_batch_stats_discarded(self, split):
        # Two plans with the same active set — one where extra clients
        # straggle, one where they were never sampled — must produce the
        # same global model: a discarded submission leaks nothing.
        from repro.fl.participation import RoundPlan

        class FixedPlanSchedule(FullParticipation):
            def __init__(self, plans):
                super().__init__()
                self.plans = plans

            def plan(self, round_index, population_size):
                return self.plans[round_index]

        def run(plans):
            rng_factory = RngFactory(0)
            partitions = iid_partition(split.train, 6, rng=rng_factory.make("p"))
            clients = build_clients(
                split.train, partitions, (), batch_size=16, rng_factory=rng_factory
            )
            model = BatchNormMLP()
            server = FederatedServer(model, MeanAggregator(), learning_rate=0.1, rng=0)
            simulation = FederatedSimulation(
                server,
                clients,
                NoAttack(),
                split.test,
                attack_rng=np.random.default_rng(0),
                participation=FixedPlanSchedule(plans),
            )
            recorder = simulation.run(len(plans))
            return recorder, {k: v.copy() for k, v in model.state_dict().items()}

        def plan(round_index, active, stragglers=()):
            cohort = sorted(set(active) | set(stragglers))
            return RoundPlan(
                round_index=round_index,
                population_size=6,
                cohort=cohort,
                active=active,
                dropped=[],
                stragglers=list(stragglers),
                weights=np.full(len(active), 1.0 / len(active)),
            )

        # Straggler 5 is never sampled again, so the only thing that could
        # leak into the later rounds is its (discarded) round-0 submission.
        with_stragglers, state_a = run(
            [plan(0, [0, 2, 4], stragglers=[5]), plan(1, [1, 3])]
        )
        without, state_b = run([plan(0, [0, 2, 4]), plan(1, [1, 3])])
        for key in state_a:
            assert np.array_equal(state_a[key], state_b[key]), key
        for ra, rb in zip(with_stragglers.rounds, without.rounds):
            assert ra.train_loss == rb.train_loss
            assert ra.test_accuracy == rb.test_accuracy
            assert ra.selected_clients == rb.selected_clients

    def test_stragglers_compute_but_are_excluded(self, split):
        simulation = make_simulation(
            split,
            NoAttack(),
            MeanAggregator(),
            byzantine=(),
            participation=FullParticipation(
                straggler_rate=0.4, rng=np.random.default_rng(2)
            ),
        )
        recorder = simulation.run(3)
        total_stragglers = sum(r.num_stragglers for r in recorder.rounds)
        assert total_stragglers > 0
        for record in recorder.rounds:
            assert record.num_reporting == 10 - record.num_stragglers
            assert len(record.selected_clients) == record.num_reporting

    def test_dropped_clients_keep_rng_state(self, split):
        simulation = make_simulation(
            split,
            NoAttack(),
            MeanAggregator(),
            byzantine=(),
            participation=UniformParticipation(0.3, rng=np.random.default_rng(4)),
        )
        states = [c.loader._rng.bit_generator.state for c in simulation.clients]
        record = simulation.run_round(0)
        sampled = set(record.cohort_clients)
        for client, before in zip(simulation.clients, states):
            advanced = client.loader._rng.bit_generator.state != before
            assert advanced == (client.client_id in sampled)

    def test_default_attack_rng_is_deterministic(self, split):
        def run():
            rng_factory = RngFactory(0)
            partitions = iid_partition(split.train, 8, rng=rng_factory.make("p"))
            clients = build_clients(
                split.train, partitions, (0, 1), batch_size=16, rng_factory=rng_factory
            )
            model = build_model("mlp", split.spec, rng=0, params={"hidden_dims": (16,)})
            server = FederatedServer(
                model, MeanAggregator(), learning_rate=0.1, rng=0
            )
            # No attack_rng passed: the stream must derive from `seed`.
            simulation = FederatedSimulation(
                server, clients, SignFlipAttack(), split.test, seed=11
            )
            return [r.train_loss for r in simulation.run(2).rounds]

        assert run() == run()

    def test_profiler_round_totals_annotated(self, split):
        from repro.perf.profiler import RoundProfiler

        profiler = RoundProfiler()
        simulation = make_simulation(
            split,
            NoAttack(),
            MeanAggregator(),
            byzantine=(0,),
            participation=UniformParticipation(
                0.5, dropout_rate=0.2, rng=np.random.default_rng(6)
            ),
            profiler=profiler,
        )
        simulation.run(3)
        for totals in profiler.round_totals:
            assert totals["cohort_size"] == 5
            assert totals["num_active"] + totals["num_dropped"] == 5
            assert "byzantine_in_cohort" in totals
            assert "num_stragglers" in totals


class TestExperimentIntegration:
    def config(self, backend="thread", n_workers=1, **training_overrides):
        training = dict(
            model="mlp",
            rounds=3,
            batch_size=16,
            n_workers=n_workers,
            collect_backend=backend,
            participation="uniform",
            participation_fraction=0.5,
            dropout_rate=0.2,
        )
        training.update(training_overrides)
        return ExperimentConfig(
            num_clients=8,
            seed=5,
            data=DataConfig(dataset="mnist_like", num_train=160, num_test=40),
            training=TrainingConfig(**training),
            defense=DefenseConfig(name="signguard"),
        )

    def test_partial_runs_equivalent_across_backends(self):
        fingerprints = []
        for backend, workers in (("sequential", 1), ("thread", 2), ("process", 2)):
            recorder = run_experiment(self.config(backend, workers))
            fingerprints.append(
                [
                    (
                        r.train_loss,
                        r.test_accuracy,
                        r.selected_clients,
                        r.cohort_clients,
                        r.num_dropped,
                    )
                    for r in recorder.rounds
                ]
            )
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    def test_partial_participation_reproducible(self):
        a = run_experiment(self.config())
        b = run_experiment(self.config())
        for ra, rb in zip(a.rounds, b.rounds):
            assert ra.cohort_clients == rb.cohort_clients
            assert ra.train_loss == rb.train_loss

    def test_fixed_cohort_runs(self):
        recorder = run_experiment(
            self.config(
                participation="fixed_cohort", cohort_size=3, participation_fraction=1.0
            )
        )
        assert all(r.cohort_size == 3 for r in recorder.rounds)
        assert recorder.mean_cohort_size() == 3.0

    def test_recorder_participation_summaries(self):
        recorder = run_experiment(self.config())
        assert recorder.mean_cohort_size() == 4.0
        assert recorder.total_dropouts() >= 0
        assert recorder.total_stragglers() == 0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="participation"):
            TrainingConfig(participation="sometimes").validate()
        with pytest.raises(ValueError, match="participation_fraction"):
            TrainingConfig(participation_fraction=0.0).validate()
        with pytest.raises(ValueError, match="cohort_size"):
            TrainingConfig(participation="fixed_cohort").validate()
        with pytest.raises(ValueError, match="dropout_rate"):
            TrainingConfig(dropout_rate=1.0).validate()
        with pytest.raises(ValueError, match="exceeds"):
            self.config(participation="fixed_cohort", cohort_size=99).validate()

    def test_config_round_trip(self):
        config = self.config()
        restored = ExperimentConfig.from_dict(config.to_dict())
        assert restored.training.participation == "uniform"
        assert restored.training.participation_fraction == 0.5
        assert restored.training.dropout_rate == 0.2
        assert restored.training.cohort_size is None


class TestDemoteToDropped:
    """Edge cases of the recovery ladder's demotion rung."""

    def make_plan(self, **overrides):
        fields = dict(
            round_index=2,
            population_size=10,
            cohort=[0, 2, 4, 6, 8],
            active=[0, 2, 4, 6],
            dropped=[8],
            stragglers=[],
            weights=[0.25, 0.25, 0.25, 0.25],
        )
        fields.update(overrides)
        return RoundPlan(**fields)

    def test_demotion_moves_and_renormalizes(self):
        plan = self.make_plan().demote_to_dropped([2, 6])
        np.testing.assert_array_equal(plan.active, [0, 4])
        np.testing.assert_array_equal(plan.dropped, [2, 6, 8])
        np.testing.assert_array_equal(plan.cohort, [0, 2, 4, 6, 8])
        np.testing.assert_allclose(plan.weights, [0.5, 0.5])
        assert plan.weights.sum() == 1.0

    def test_empty_demotion_returns_the_same_plan(self):
        plan = self.make_plan()
        assert plan.demote_to_dropped([]) is plan

    def test_demoting_every_active_client_raises(self):
        # No survivor can report: the caller must escalate to a run-level
        # failure (FleetOutageError), never a zero-row aggregation.
        with pytest.raises(ValueError, match="every active client"):
            self.make_plan().demote_to_dropped([0, 2, 4, 6])

    def test_demoting_non_active_clients_raises(self):
        # Stragglers and already-dropped clients are not active rows; a
        # collector reporting them as failed is a bookkeeping bug.
        plan = self.make_plan(
            active=[0, 2, 4], stragglers=[6], weights=[0.3, 0.3, 0.4]
        )
        with pytest.raises(ValueError, match="not active"):
            plan.demote_to_dropped([6])  # straggler
        with pytest.raises(ValueError, match="not active"):
            plan.demote_to_dropped([8])  # already dropped
        with pytest.raises(ValueError, match="not active"):
            plan.demote_to_dropped([1])  # not even in the cohort

    def test_zero_total_weight_renormalizes_uniformly(self):
        # If the survivors jointly carried zero weight, renormalization
        # cannot divide by the sum; they split the round evenly instead.
        plan = self.make_plan(weights=[0.0, 0.0, 0.5, 0.5])
        demoted = plan.demote_to_dropped([4, 6])
        np.testing.assert_array_equal(demoted.active, [0, 2])
        np.testing.assert_allclose(demoted.weights, [0.5, 0.5])

    def test_repeated_demotion_accumulates(self):
        # The distributed collector may demote in waves (a survivor dying
        # during re-dispatch); each wave renormalizes the remainder.
        plan = self.make_plan().demote_to_dropped([0]).demote_to_dropped([6])
        np.testing.assert_array_equal(plan.active, [2, 4])
        np.testing.assert_array_equal(plan.dropped, [0, 6, 8])
        np.testing.assert_allclose(plan.weights, [0.5, 0.5])
