"""Tests for the model zoo and the model factory."""

import numpy as np
import pytest

from repro.data.datasets import DataSpec
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import (
    MLP,
    LogisticRegression,
    ResNetLite,
    SimpleCNN,
    TextRNN,
    build_model,
)
from repro.nn.optim import SGD

IMAGE_SPEC = DataSpec(kind="image", num_classes=4, channels=1, height=8, width=8)
COLOR_SPEC = DataSpec(kind="image", num_classes=5, channels=3, height=8, width=8)
TEXT_SPEC = DataSpec(kind="text", num_classes=3, vocab_size=30, seq_len=6)


def train_steps(model, inputs, labels, steps=25, lr=0.1):
    """Run a few SGD steps and return (initial_loss, final_loss)."""
    loss_fn = CrossEntropyLoss()
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
    losses = []
    for _ in range(steps):
        loss = loss_fn(model(inputs), labels)
        model.zero_grad()
        model.backward(loss_fn.backward())
        optimizer.step()
        losses.append(loss)
    return losses[0], losses[-1]


class TestForwardShapes:
    def test_mlp(self, rng):
        model = MLP(16, 4, hidden_dims=(8,), rng=rng)
        assert model(rng.normal(size=(3, 16))).shape == (3, 4)

    def test_logistic(self, rng):
        model = LogisticRegression(16, 4, rng=rng)
        assert model(rng.normal(size=(3, 2, 8))).shape == (3, 4)

    def test_simple_cnn(self, rng):
        model = SimpleCNN(1, (8, 8), 4, rng=rng)
        assert model(rng.normal(size=(2, 1, 8, 8))).shape == (2, 4)

    def test_resnet_lite(self, rng):
        model = ResNetLite(3, (8, 8), 5, rng=rng)
        assert model(rng.normal(size=(2, 3, 8, 8))).shape == (2, 5)

    def test_textrnn(self, rng):
        model = TextRNN(30, 3, rng=rng)
        assert model(rng.integers(0, 30, size=(4, 6))).shape == (4, 3)

    def test_textrnn_rejects_non_sequence_input(self, rng):
        with pytest.raises(ValueError):
            TextRNN(30, 3, rng=rng)(rng.integers(0, 30, size=(4,)))


class TestLearning:
    """Every model must be able to overfit a tiny batch — the classic sanity check."""

    def test_mlp_overfits_small_batch(self, rng):
        inputs = rng.normal(size=(16, 16))
        labels = rng.integers(0, 4, size=16)
        first, last = train_steps(MLP(16, 4, rng=rng), inputs, labels, steps=60)
        assert last < first * 0.5

    def test_simple_cnn_overfits_small_batch(self, rng):
        inputs = rng.normal(size=(12, 1, 8, 8))
        labels = rng.integers(0, 4, size=12)
        first, last = train_steps(
            SimpleCNN(1, (8, 8), 4, rng=rng), inputs, labels, steps=40, lr=0.05
        )
        assert last < first * 0.6

    def test_resnet_lite_overfits_small_batch(self, rng):
        inputs = rng.normal(size=(10, 3, 8, 8))
        labels = rng.integers(0, 5, size=10)
        first, last = train_steps(
            ResNetLite(3, (8, 8), 5, rng=rng), inputs, labels, steps=40, lr=0.05
        )
        assert last < first * 0.8

    def test_textrnn_overfits_small_batch(self, rng):
        inputs = rng.integers(0, 30, size=(12, 6))
        labels = rng.integers(0, 3, size=12)
        first, last = train_steps(
            TextRNN(30, 3, rng=rng), inputs, labels, steps=60, lr=0.3
        )
        assert last < first * 0.7


class TestBuildModel:
    @pytest.mark.parametrize(
        "name,spec",
        [
            ("mlp", IMAGE_SPEC),
            ("logistic", IMAGE_SPEC),
            ("simple_cnn", IMAGE_SPEC),
            ("resnet_lite", COLOR_SPEC),
            ("textrnn", TEXT_SPEC),
            ("cnn", IMAGE_SPEC),  # alias
        ],
    )
    def test_builds_registered_models(self, name, spec):
        model = build_model(name, spec, rng=0)
        assert model.num_parameters() > 0

    def test_image_model_rejects_text_spec(self):
        with pytest.raises(ValueError):
            build_model("simple_cnn", TEXT_SPEC, rng=0)

    def test_text_model_rejects_image_spec(self):
        with pytest.raises(ValueError):
            build_model("textrnn", IMAGE_SPEC, rng=0)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_model("transformer", IMAGE_SPEC)

    def test_seeded_builds_are_identical(self):
        a = build_model("mlp", IMAGE_SPEC, rng=3)
        b = build_model("mlp", IMAGE_SPEC, rng=3)
        from repro.nn.vectorize import get_flat_parameters

        np.testing.assert_array_equal(get_flat_parameters(a), get_flat_parameters(b))

    def test_state_dict_round_trip(self):
        model = build_model("mlp", IMAGE_SPEC, rng=0)
        state = model.state_dict()
        other = build_model("mlp", IMAGE_SPEC, rng=1)
        other.load_state_dict(state)
        from repro.nn.vectorize import get_flat_parameters

        np.testing.assert_array_equal(
            get_flat_parameters(model), get_flat_parameters(other)
        )

    def test_state_dict_includes_batchnorm_buffers(self):
        model = build_model("resnet_lite", IMAGE_SPEC, rng=0)
        buffer_names = [name for name, _ in model.named_buffers()]
        assert buffer_names  # resnet_lite has BatchNorm layers
        assert all(
            name.endswith(("running_mean", "running_var")) for name in buffer_names
        )
        state = model.state_dict()
        assert set(buffer_names) <= set(state)
        params_only = model.state_dict(include_buffers=False)
        assert set(buffer_names).isdisjoint(params_only)

    def test_buffer_round_trip_restores_running_stats(self):
        model = build_model("resnet_lite", IMAGE_SPEC, rng=0)
        name, buffer = model.named_buffers()[0]
        buffer[...] = 0.25
        state = model.state_dict()
        other = build_model("resnet_lite", IMAGE_SPEC, rng=1)
        other.load_state_dict(state)
        np.testing.assert_array_equal(dict(other.named_buffers())[name], 0.25)

    def test_params_only_state_dict_still_loads(self):
        # Buffers are optional on load (backwards compatible with dicts
        # produced before buffers joined the state), unknown keys are not.
        model = build_model("resnet_lite", IMAGE_SPEC, rng=0)
        model.load_state_dict(model.state_dict(include_buffers=False))
        state = model.state_dict()
        state["not_a_real_key"] = np.zeros(3)
        with pytest.raises(KeyError, match="unexpected"):
            model.load_state_dict(state)
