"""Tests for agglomerative clustering."""

import numpy as np
import pytest

from repro.clustering import AgglomerativeClustering


@pytest.fixture
def three_blobs(rng):
    return np.vstack(
        [
            rng.normal(0.0, 0.1, size=(8, 2)),
            rng.normal(4.0, 0.1, size=(6, 2)),
            rng.normal(-4.0, 0.1, size=(5, 2)),
        ]
    )


class TestAgglomerativeClustering:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average"])
    def test_recovers_three_blobs(self, three_blobs, linkage):
        labels = AgglomerativeClustering(n_clusters=3, linkage=linkage).fit_predict(
            three_blobs
        )
        groups = [labels[:8], labels[8:14], labels[14:]]
        for group in groups:
            assert len(np.unique(group)) == 1
        assert len({group[0] for group in groups}) == 3

    def test_one_cluster_merges_everything(self, three_blobs):
        labels = AgglomerativeClustering(n_clusters=1).fit_predict(three_blobs)
        assert len(np.unique(labels)) == 1

    def test_n_clusters_equal_samples_keeps_singletons(self, rng):
        points = rng.normal(size=(5, 2))
        labels = AgglomerativeClustering(n_clusters=5).fit_predict(points)
        assert len(np.unique(labels)) == 5

    def test_rejects_unknown_linkage(self):
        with pytest.raises(ValueError):
            AgglomerativeClustering(linkage="ward")

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            AgglomerativeClustering(n_clusters=4).fit(np.zeros((3, 2)))

    def test_labels_are_contiguous_from_zero(self, three_blobs):
        labels = AgglomerativeClustering(n_clusters=3).fit_predict(three_blobs)
        assert set(labels) == {0, 1, 2}
