"""Deterministic chaos harness: fault schedules, injection, quorum policies.

The contracts under test:

* :class:`FaultSpec` / :class:`FaultSchedule` are pure declarative data —
  parse/format round-trips, seeded :meth:`FaultSchedule.random` draws are
  reproducible, per-worker slicing re-keys correctly;
* every in-process collect backend honours an injected fault by skipping
  the faulted worker's rows (RNG streams untouched, rows NaN, ids in
  ``failed_rows``) so a faulted run is **bit-identical** to a clean run
  with the same clients planned as dropouts;
* the simulation maps a total failure to :class:`FleetOutageError` and a
  sub-quorum round to the configured ``on_quorum_loss`` policy;
* the distributed backend walks the full recovery ladder: a crashed
  worker's rows are re-dispatched to survivors and the round completes
  with **zero** dropouts, bit-identical to a run with no fault at all.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.fl.collector import (
    ParallelCollector,
    ProcessCollector,
    SequentialCollector,
)
from repro.fl.faults import (
    FAULT_KINDS,
    FaultSchedule,
    FaultSpec,
    FleetOutageError,
    QuorumLossError,
    parse_fault,
)
from repro.fl.transport import DistributedCollector, start_thread_fleet
from repro.perf.profiler import RoundProfiler
from tests.test_fl_parallel_collect import make_clients, make_model
from tests.test_fl_transport import PlannedSchedule, build_simulation, make_plan


# ---------------------------------------------------------------------------
# FaultSpec / parse_fault units
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_valid_spec_normalizes_types(self):
        spec = FaultSpec(kind="stall", round="3", worker="1", seconds=2)
        assert spec.round == 3 and isinstance(spec.round, int)
        assert spec.worker == 1 and isinstance(spec.worker, int)
        assert spec.seconds == 2.0 and isinstance(spec.seconds, float)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "explode", "round": 1},
            {"kind": "crash", "round": 0},
            {"kind": "crash", "round": 1, "worker": -1},
            {"kind": "stall", "round": 1, "seconds": 0},
        ],
    )
    def test_invalid_specs_raise(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_to_arg_round_trips_through_parse(self):
        for spec in (
            FaultSpec(kind="crash", round=2),
            FaultSpec(kind="stall", round=5, seconds=1.5),
            FaultSpec(kind="corrupt_frame", round=9),
            FaultSpec(kind="refuse_connect", round=1),
        ):
            assert parse_fault(spec.to_arg()) == spec

    @pytest.mark.parametrize(
        "text", ["crash", "crash@", "@2", "crash@two", "stall@2:soon"]
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_fault(text)

    def test_parse_assigns_worker(self):
        assert parse_fault("crash@4", worker=3).worker == 3


# ---------------------------------------------------------------------------
# FaultSchedule units
# ---------------------------------------------------------------------------


class TestFaultSchedule:
    def test_fires_matches_kind_occurrence_worker(self):
        schedule = FaultSchedule(
            [FaultSpec(kind="crash", round=2, worker=1), FaultSpec("stall", 2)]
        )
        assert schedule.fires("crash", 2, worker=1).kind == "crash"
        assert schedule.fires("crash", 2, worker=0) is None
        assert schedule.fires("crash", 3, worker=1) is None
        assert schedule.any_fires(2).kind == "stall"
        assert schedule.any_fires(1) is None

    def test_fires_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultSchedule().fires("explode", 1)

    def test_for_worker_rekeys_to_zero(self):
        schedule = FaultSchedule(
            [
                FaultSpec("crash", 2, worker=1),
                FaultSpec("stall", 3, worker=1, seconds=7.0),
                FaultSpec("crash", 4, worker=0),
            ]
        )
        own = schedule.for_worker(1)
        assert len(own) == 2
        assert all(spec.worker == 0 for spec in own)
        assert own.fires("stall", 3).seconds == 7.0
        assert schedule.for_worker(2) == FaultSchedule()

    def test_worker_indices_and_cli_args(self):
        fleet_wide = FaultSchedule(
            [FaultSpec("crash", 1, worker=2), FaultSpec("stall", 1, worker=0)]
        )
        assert fleet_wide.worker_indices() == (0, 2)
        with pytest.raises(ValueError, match="single-worker"):
            fleet_wide.to_cli_args()
        args = fleet_wide.for_worker(2).to_cli_args()
        assert args == ["--fault", "crash@1"]
        assert FaultSchedule().to_cli_args() == []

    def test_equality_hash_and_bool(self):
        a = FaultSchedule.from_args(["crash@2", "stall@1:5"])
        b = FaultSchedule.from_args(["stall@1:5", "crash@2"])  # order-free
        assert a == b and hash(a) == hash(b)
        assert a and len(a) == 2
        assert not FaultSchedule()

    def test_random_is_seed_deterministic(self):
        draw = lambda seed: FaultSchedule.random(  # noqa: E731
            20, 4, rng=seed, crash_rate=0.1, stall_rate=0.1, corrupt_rate=0.05
        )
        assert draw(7) == draw(7)
        assert draw(7) != draw(8)
        for spec in draw(7):
            assert 1 <= spec.round <= 20
            assert 0 <= spec.worker < 4
            assert spec.kind in FAULT_KINDS

    def test_random_rate_one_fires_everywhere(self):
        schedule = FaultSchedule.random(3, 2, rng=0, crash_rate=1.0)
        assert len(schedule) == 6
        for occurrence in (1, 2, 3):
            for worker in (0, 1):
                assert schedule.fires("crash", occurrence, worker)


# ---------------------------------------------------------------------------
# in-process backend injection
# ---------------------------------------------------------------------------


def collect_rounds(collector, clients, model, rounds, n_rows=None):
    """Run ``rounds`` full collect passes; return the list of buffer copies."""
    n_rows = len(clients) if n_rows is None else n_rows
    out = np.empty((n_rows, model.num_parameters()))
    buffers = []
    for _ in range(rounds):
        collector.collect(clients, model, out)
        buffers.append(out.copy())
    return buffers


class TestInProcessInjection:
    def test_sequential_fault_fails_every_row(self):
        clients = make_clients(4)
        model = make_model()
        collector = SequentialCollector(
            fault_schedule=FaultSchedule.from_args(["crash@2"])
        )
        out = np.empty((4, model.num_parameters()))
        collector.collect(clients, model, out)
        assert collector.failed_rows == ()
        collector.collect(clients, model, out)
        assert collector.failed_rows == (0, 1, 2, 3)
        assert np.isnan(out).all()
        # Round 3: the schedule is spent; collection resumes.
        collector.collect(clients, model, out)
        assert collector.failed_rows == ()
        assert np.isfinite(out).all()

    def test_thread_fault_maps_buffer_positions_to_worker(self):
        clients = make_clients(6)
        model = make_model()
        collector = ParallelCollector(
            3, fault_schedule=FaultSchedule([FaultSpec("crash", 2, worker=1)])
        )
        try:
            collector.collect(
                clients, model, np.empty((6, model.num_parameters()))
            )
            out = np.empty((6, model.num_parameters()))
            collector.collect(clients, model, out)
        finally:
            collector.close()
        # Buffer positions 1 and 4 belong to worker 1 of 3.
        assert collector.failed_rows == (1, 4)
        assert np.isnan(out[[1, 4]]).all()
        assert np.isfinite(out[[0, 2, 3, 5]]).all()

    def test_process_fault_maps_client_ids_to_worker(self):
        clients = make_clients(6)
        model = make_model()
        collector = ProcessCollector(
            2, fault_schedule=FaultSchedule([FaultSpec("crash", 2, worker=1)])
        )
        try:
            collector.collect(
                clients, model, np.empty((6, model.num_parameters()))
            )
            out = np.empty((6, model.num_parameters()))
            collector.collect(clients, model, out)
            # Client ids 1, 3, 5 live on worker 1 of 2.
            assert collector.failed_rows == (1, 3, 5)
            assert np.isnan(out[[1, 3, 5]]).all()
            assert np.isfinite(out[[0, 2, 4]]).all()
        finally:
            collector.close()

    @pytest.mark.parametrize(
        "make_collector, failed_ids",
        [
            # thread: buffer position % 3 == 1 -> clients 1, 4, 7
            (
                lambda s: ParallelCollector(3, fault_schedule=s),
                [1, 4, 7],
            ),
            # process: client id % 2 == 1 -> clients 1, 3, 5, 7
            (
                lambda s: ProcessCollector(2, fault_schedule=s),
                [1, 3, 5, 7],
            ),
        ],
    )
    def test_faulted_round_equals_planned_dropouts(self, make_collector, failed_ids):
        # The acceptance contract: a fault-injected run is bit-identical to
        # a clean sequential run whose participation plan declares the same
        # clients as dropouts (faulted clients never advance their RNG).
        n, rounds, fault_round = 8, 3, 2
        schedule = FaultSchedule(
            [FaultSpec("crash", fault_round, worker=1)]
        )
        faulted = build_simulation(make_collector(schedule))
        try:
            faulted_records = [faulted.run_round(i) for i in range(rounds)]
        finally:
            faulted.close()

        active = [i for i in range(n) if i not in failed_ids]
        plans = [
            make_plan(0, n, active=range(n)),
            make_plan(1, n, active=active, dropped=failed_ids),
            make_plan(2, n, active=range(n)),
        ]
        reference = build_simulation(
            SequentialCollector(), schedule=PlannedSchedule(plans)
        )
        try:
            reference_records = [reference.run_round(i) for i in range(rounds)]
        finally:
            reference.close()

        assert [r.train_loss for r in faulted_records] == [
            r.train_loss for r in reference_records
        ]
        assert faulted_records[1].num_dropped == len(failed_ids)
        faulted_state = faulted.model.state_dict()
        reference_state = reference.model.state_dict()
        for name in reference_state:
            assert np.array_equal(faulted_state[name], reference_state[name])


# ---------------------------------------------------------------------------
# quorum policies
# ---------------------------------------------------------------------------


def faulted_thread_collector(fault_round=2, worker=1):
    return ParallelCollector(
        2, fault_schedule=FaultSchedule([FaultSpec("crash", fault_round, worker)])
    )


class TestQuorumPolicies:
    def test_accept_records_degraded_round(self):
        simulation = build_simulation(faulted_thread_collector())
        simulation.min_cohort_fraction = 0.9
        try:
            healthy = simulation.run_round(0)
            degraded = simulation.run_round(1)
        finally:
            simulation.close()
        assert healthy.quorum_met
        assert not degraded.quorum_met
        assert degraded.num_dropped == 4
        assert degraded.num_retries == 0

    def test_abort_raises_quorum_loss(self):
        simulation = build_simulation(faulted_thread_collector())
        simulation.min_cohort_fraction = 0.9
        simulation.on_quorum_loss = "abort"
        try:
            simulation.run_round(0)
            with pytest.raises(QuorumLossError, match="below the quorum"):
                simulation.run_round(1)
        finally:
            simulation.close()

    def test_retry_recollects_until_quorum(self):
        # The fault spends itself on the first attempt; the retry's fresh
        # collect pass sees no fault and restores the full cohort.
        simulation = build_simulation(faulted_thread_collector())
        simulation.min_cohort_fraction = 0.9
        simulation.on_quorum_loss = "retry"
        try:
            record = simulation.run_round(0)
            assert record.num_retries == 0
            record = simulation.run_round(1)
        finally:
            simulation.close()
        assert record.num_retries == 1
        assert record.quorum_met
        assert record.num_dropped == 0

    def test_retry_budget_exhaustion_raises(self):
        # Three consecutive faulted passes vs. a single retry: still below
        # quorum when the budget runs out.
        schedule = FaultSchedule(
            [FaultSpec("crash", occurrence, worker=1) for occurrence in (1, 2, 3)]
        )
        simulation = build_simulation(
            ParallelCollector(2, fault_schedule=schedule)
        )
        simulation.min_cohort_fraction = 0.9
        simulation.on_quorum_loss = "retry"
        simulation.quorum_retries = 1
        try:
            with pytest.raises(QuorumLossError, match="after 1 retries"):
                simulation.run_round(0)
        finally:
            simulation.close()

    def test_total_failure_is_fleet_outage(self):
        simulation = build_simulation(
            SequentialCollector(fault_schedule=FaultSchedule.from_args(["crash@1"]))
        )
        try:
            with pytest.raises(FleetOutageError, match="fleet outage"):
                simulation.run_round(0)
        finally:
            simulation.close()

    def test_retry_policy_recovers_from_fleet_outage(self):
        simulation = build_simulation(
            SequentialCollector(fault_schedule=FaultSchedule.from_args(["crash@1"]))
        )
        simulation.on_quorum_loss = "retry"
        try:
            record = simulation.run_round(0)
        finally:
            simulation.close()
        assert record.num_retries == 1
        assert np.isfinite(record.train_loss)

    def test_quorum_validation(self):
        with pytest.raises(ValueError, match="min_cohort_fraction"):
            build_simulation_with(min_cohort_fraction=1.5)
        with pytest.raises(ValueError, match="on_quorum_loss"):
            build_simulation_with(on_quorum_loss="panic")
        with pytest.raises(ValueError, match="quorum_retries"):
            build_simulation_with(quorum_retries=-1)


def build_simulation_with(**kwargs):
    simulation = build_simulation(SequentialCollector())
    simulation.close()
    from repro.fl.simulation import FederatedSimulation

    return FederatedSimulation(
        simulation.server,
        simulation.clients,
        simulation.attack,
        simulation.test_dataset,
        collector=SequentialCollector(),
        **kwargs,
    )


# ---------------------------------------------------------------------------
# distributed recovery ladder: retry + re-dispatch
# ---------------------------------------------------------------------------


class TestDistributedRecovery:
    def test_crashed_worker_rows_redispatched_bit_exactly(self):
        # The tentpole acceptance proof: worker 0 crashes on its second
        # round; re-dispatch recomputes its rows on the survivor, so the
        # round completes with ZERO dropouts and every round of the run is
        # bit-identical to a run with no fault at all.
        reference = build_simulation(SequentialCollector())
        try:
            reference_losses = [
                reference.run_round(index).train_loss for index in range(3)
            ]
            reference_state = reference.model.state_dict()
        finally:
            reference.close()

        crash = FaultSchedule.from_args(["crash@2"])  # worker 0's 2nd round
        profiler = RoundProfiler()
        with start_thread_fleet(2, fault_schedule=crash) as fleet:
            collector = DistributedCollector(
                fleet.addresses, connect_timeout=5.0, round_timeout=30.0
            )
            simulation = build_simulation(collector)
            simulation.profiler = profiler
            try:
                records = [simulation.run_round(index) for index in range(3)]
                state = simulation.model.state_dict()
            finally:
                simulation.close()

        assert [r.train_loss for r in records] == reference_losses
        for name in reference_state:
            assert np.array_equal(state[name], reference_state[name])
        # No round lost a client...
        assert [r.num_dropped for r in records] == [0, 0, 0]
        # ...but the crash round shows its recovery in the record: worker
        # 0's contiguous 4-client chunk (ids 0-3) was re-dispatched.  The
        # crashed thread worker closes its listener for good, so round 3
        # re-dispatches the same chunk again.
        assert records[0].num_redispatched == 0
        assert records[1].num_redispatched == 4
        assert records[2].num_redispatched == 4
        # ...and in the profiler: a per-round annotation plus a run total.
        assert profiler.round_totals[1]["collect_redispatched"] == 4
        assert profiler.counters["collect_redispatched"] == 8

    def test_refused_connect_retried_with_backoff(self):
        # Worker 0 hangs up on the first HELLO; connect_with_retry's second
        # attempt succeeds and the collect is unaffected.
        refuse = FaultSchedule.from_args(["refuse_connect@1"])
        with start_thread_fleet(1, fault_schedule=refuse) as fleet:
            collector = DistributedCollector(
                fleet.addresses,
                connect_timeout=5.0,
                retry_attempts=3,
                retry_backoff=0.01,
            )
            clients = make_clients(4)
            model = make_model()
            out = np.empty((4, model.num_parameters()))
            try:
                collector.collect(clients, model, out)
                failures = collector._conns[0].connect_failures
            finally:
                collector.close()
        assert np.isfinite(out).all()
        assert failures == 1

    def test_corrupt_frame_degrades_to_dropouts_without_redispatch(self):
        # A torn gradient frame is detected (FrameError), never aggregated,
        # and with redispatch off the worker's rows demote to dropouts.
        corrupt = FaultSchedule.from_args(["corrupt_frame@2"])
        with start_thread_fleet(2, fault_schedule=corrupt) as fleet:
            collector = DistributedCollector(
                fleet.addresses,
                connect_timeout=5.0,
                round_timeout=30.0,
                redispatch=False,
            )
            simulation = build_simulation(collector)
            try:
                healthy = simulation.run_round(0)
                degraded = simulation.run_round(1)
            finally:
                simulation.close()
        assert healthy.num_dropped == 0
        assert degraded.num_dropped == 4
        assert np.isfinite(degraded.train_loss)

    def test_caller_side_injection_severs_link_before_broadcast(self):
        # A caller-side schedule fails the link without the worker ever
        # seeing the round; with redispatch the survivor recovers the rows.
        crash = FaultSchedule([FaultSpec("crash", 2, worker=0)])
        with start_thread_fleet(2) as fleet:  # healthy workers
            collector = DistributedCollector(
                fleet.addresses,
                connect_timeout=5.0,
                round_timeout=30.0,
                fault_schedule=crash,
            )
            simulation = build_simulation(collector)
            try:
                records = [simulation.run_round(index) for index in range(3)]
            finally:
                simulation.close()
        assert [r.num_dropped for r in records] == [0, 0, 0]
        assert records[1].num_redispatched == 4
        assert records[1].num_reconnects >= 1  # the link was repaired after


def test_quorum_size_uses_ceiling():
    simulation = build_simulation(SequentialCollector())
    simulation.min_cohort_fraction = 0.5
    try:
        plan = make_plan(0, 8, active=range(5), dropped=range(5, 8))
        assert simulation._quorum_size(plan) == math.ceil(0.5 * 8)
    finally:
        simulation.close()
