"""Tests for the parallel collect stage (repro.fl.collector).

The contract under test: the threaded collector is *bit-identical* to the
sequential one at float64 (the per-client RNG streams are fixed before
dispatch, so scheduling cannot change results), equivalent within tolerance
at float32, robust across worker-count edge cases, propagates client
exceptions, NaN-invalidates the reused round buffer so stale rows cannot
leak, and replays BatchNorm running-statistics updates onto the global model
so evaluation metrics match the sequential path exactly.

(The process-pool backend shares these contracts; its tests live in
``test_fl_process_collect.py``.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataConfig, DefenseConfig, ExperimentConfig, TrainingConfig
from repro.data.factory import build_dataset
from repro.fl.client import BenignClient
from repro.fl.collector import (
    ParallelCollector,
    ProcessCollector,
    SequentialCollector,
    build_collector,
    default_worker_count,
)
from repro.fl.experiment import run_experiment
from repro.fl.metrics import evaluate_model
from repro.nn.activations import ReLU
from repro.nn.layers import BatchNorm1d, Flatten, Linear, Sequential
from repro.nn.models.mlp import MLP
from repro.nn.module import Module
from repro.utils.rng import RngFactory


def make_clients(n_clients, *, num_train=200, batch_size=16, seed=0):
    """A small benign population with RngFactory-derived client streams."""
    split = build_dataset(
        "mnist_like", num_train=num_train, num_test=40, rng=np.random.default_rng(seed)
    )
    rng_factory = RngFactory(seed)
    indices = np.array_split(np.arange(num_train), n_clients)
    return [
        BenignClient(
            cid,
            split.train.subset(idx),
            batch_size=batch_size,
            rng=rng_factory.make(f"client-{cid}"),
        )
        for cid, idx in enumerate(indices)
    ]


def make_model(seed=1, dtype=None):
    model = MLP(14 * 14, 10, hidden_dims=(24,), rng=np.random.default_rng(seed))
    if dtype is not None:
        model.astype(dtype)
    return model


class BatchNormMLP(Module):
    """A small model with BatchNorm running statistics (buffer state)."""

    def __init__(self, seed=1):
        rng = np.random.default_rng(seed)
        super().__init__()
        self.network = Sequential(
            Flatten(),
            Linear(14 * 14, 16, rng=rng),
            BatchNorm1d(16),
            ReLU(),
            Linear(16, 10, rng=rng),
        )

    def forward(self, x):
        return self.network(x)

    def backward(self, grad_output):
        return self.network.backward(grad_output)


def collect_with(collector, n_clients, *, dtype=np.float64, model_dtype=None):
    clients = make_clients(n_clients)
    model = make_model(dtype=model_dtype)
    out = np.empty((n_clients, model.num_parameters()), dtype=dtype)
    try:
        result = collector.collect(clients, model, out)
    finally:
        collector.close()
    assert result is out
    return out


class TestBitEquality:
    def test_threaded_float64_bit_identical_to_sequential(self):
        n_clients = 10
        sequential = collect_with(SequentialCollector(), n_clients)
        threaded = collect_with(ParallelCollector(4), n_clients)
        # Bit-for-bit, not allclose: scheduling must not change anything.
        assert np.array_equal(sequential, threaded)

    def test_threaded_collect_repeatable_across_runs(self):
        first = collect_with(ParallelCollector(3), 8)
        second = collect_with(ParallelCollector(3), 8)
        assert np.array_equal(first, second)

    def test_full_experiment_equivalent_with_workers(self):
        def run(n_workers):
            config = ExperimentConfig(
                num_clients=8,
                seed=5,
                data=DataConfig(dataset="mnist_like", num_train=160, num_test=40),
                training=TrainingConfig(
                    model="mlp", rounds=3, batch_size=16, n_workers=n_workers
                ),
                defense=DefenseConfig(name="signguard"),
            )
            return run_experiment(config)

        sequential = run(1)
        threaded = run(3)
        for a, b in zip(sequential.rounds, threaded.rounds):
            assert a.train_loss == b.train_loss
            assert a.test_accuracy == b.test_accuracy
            assert a.selected_clients == b.selected_clients


class TestFloat32:
    def test_float32_threaded_matches_sequential_bitwise(self):
        # Determinism is dtype-independent: even at float32 the threaded
        # path is bit-identical to the sequential float32 path.
        sequential = collect_with(
            SequentialCollector(), 6, dtype=np.float32, model_dtype=np.float32
        )
        threaded = collect_with(
            ParallelCollector(3), 6, dtype=np.float32, model_dtype=np.float32
        )
        assert sequential.dtype == np.float32
        assert np.array_equal(sequential, threaded)

    def test_float32_close_to_float64_reference(self):
        reference = collect_with(SequentialCollector(), 6)
        reduced = collect_with(
            ParallelCollector(3), 6, dtype=np.float32, model_dtype=np.float32
        )
        scale = np.abs(reference).max()
        assert np.allclose(reference, reduced, atol=1e-5 * max(scale, 1.0))


class TestWorkerCounts:
    @pytest.mark.parametrize("n_workers", [1, 7, 20])
    def test_edge_worker_counts_match_sequential(self, n_workers):
        # 1 worker (degenerate pool), exactly n_clients, and > n_clients.
        n_clients = 7
        sequential = collect_with(SequentialCollector(), n_clients)
        threaded = collect_with(ParallelCollector(n_workers), n_clients)
        assert np.array_equal(sequential, threaded)

    def test_worker_timings_cover_all_clients(self):
        collector = ParallelCollector(3)
        clients = make_clients(8)
        model = make_model()
        out = np.empty((8, model.num_parameters()))
        try:
            collector.collect(clients, model, out)
            timings = collector.worker_timings
        finally:
            collector.close()
        assert len(timings) == 3
        assert sorted(w for w, _, _ in timings) == [0, 1, 2]
        assert sum(count for _, _, count in timings) == 8
        assert all(seconds >= 0 for _, seconds, _ in timings)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="n_workers"):
            ParallelCollector(0)

    def test_build_collector_dispatch(self):
        assert isinstance(build_collector(1), SequentialCollector)
        assert isinstance(build_collector(4), ParallelCollector)
        assert isinstance(build_collector(4, "thread"), ParallelCollector)
        assert isinstance(build_collector(4, "process"), ProcessCollector)
        assert isinstance(build_collector(4, "sequential"), SequentialCollector)
        assert isinstance(build_collector(1, "process"), SequentialCollector)
        assert default_worker_count() >= 1

    def test_build_collector_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="collect backend"):
            build_collector(4, "greenlet")

    def test_collector_reusable_after_close(self):
        collector = ParallelCollector(2)
        first = collect_with_collector_twice(collector)
        assert first


def collect_with_collector_twice(collector):
    clients = make_clients(5)
    model = make_model()
    out = np.empty((5, model.num_parameters()))
    collector.collect(clients, model, out)
    collector.close()
    # After close() the executor and replicas are rebuilt on demand.
    collector.collect(clients, model, out)
    collector.close()
    return True


class TestExceptionPropagation:
    def test_failing_client_raises(self):
        class ExplodingClient(BenignClient):
            def compute_gradient(self, model):
                raise RuntimeError("client 3 went Byzantine for real")

        clients = make_clients(6)
        bad = ExplodingClient(
            3, clients[3].dataset, batch_size=4, rng=np.random.default_rng(0)
        )
        clients[3] = bad
        model = make_model()
        out = np.zeros((6, model.num_parameters()))
        collector = ParallelCollector(3)
        try:
            with pytest.raises(RuntimeError, match="went Byzantine"):
                collector.collect(clients, model, out)
        finally:
            collector.close()

    def test_other_clients_still_collected_on_failure(self):
        class ExplodingClient(BenignClient):
            def compute_gradient(self, model):
                raise RuntimeError("boom")

        clients = make_clients(4)
        clients[0] = ExplodingClient(
            0, clients[0].dataset, batch_size=4, rng=np.random.default_rng(0)
        )
        model = make_model()
        out = np.zeros((4, model.num_parameters()))
        collector = ParallelCollector(2)
        try:
            with pytest.raises(RuntimeError):
                collector.collect(clients, model, out)
        finally:
            collector.close()
        # Worker 1 (clients 1 and 3) finished its chunk before the error
        # surfaced; its rows are populated.  Worker 0's rows (the failing
        # client and everything after it in the chunk) are NaN-invalidated.
        assert np.all(np.isfinite(out[1]))
        assert np.all(np.isfinite(out[3]))
        assert np.all(np.isnan(out[0]))
        assert np.all(np.isnan(out[2]))


class TestStochasticForwardModels:
    def test_dropout_model_rejected_by_parallel_collector(self):
        from repro.nn.layers import Dropout, Flatten, Linear, Sequential
        from repro.nn.module import Module

        class DropoutMLP(Module):
            def __init__(self):
                super().__init__()
                self.network = Sequential(
                    Flatten(), Linear(14 * 14, 10, rng=0), Dropout(0.5, rng=0)
                )

            def forward(self, x):
                return self.network(x)

            def backward(self, grad_output):
                return self.network.backward(grad_output)

        clients = make_clients(4)
        model = DropoutMLP()
        out = np.empty((4, model.num_parameters()))
        collector = ParallelCollector(2)
        try:
            # Dropout draws masks from a model-owned RNG; replicas would
            # consume that stream per chunk instead of in client order, so
            # the collector must refuse rather than silently diverge.
            with pytest.raises(ValueError, match="RNG-consuming"):
                collector.collect(clients, model, out)
        finally:
            collector.close()
        # The sequential strategy (n_workers=1) still accepts the model.
        SequentialCollector().collect(clients, model, out)
        assert np.all(np.isfinite(out))


class TestProfilerIntegration:
    def test_per_worker_stages_recorded(self):
        from repro.perf.profiler import RoundProfiler

        profiler = RoundProfiler()
        config = ExperimentConfig(
            num_clients=6,
            seed=0,
            data=DataConfig(dataset="mnist_like", num_train=120, num_test=40),
            training=TrainingConfig(model="mlp", rounds=2, batch_size=16, n_workers=3),
            defense=DefenseConfig(name="signguard"),
        )
        run_experiment(config, profiler=profiler)
        summary = profiler.summary()
        assert "collect_gradients" in summary
        worker_stages = [s for s in summary if s.startswith("collect_worker_")]
        assert sorted(worker_stages) == [
            "collect_worker_0",
            "collect_worker_1",
            "collect_worker_2",
        ]
        assert summary["collect_worker_0"]["count"] == 2  # one sample per round


class TestBufferInvalidation:
    """A failed round must never leave stale gradients in the reused buffer."""

    class ExplodingClient(BenignClient):
        def compute_gradient(self, model):
            raise RuntimeError("boom")

    @pytest.mark.parametrize("make_collector", [SequentialCollector, None])
    def test_stale_rows_are_nan_after_failure(self, make_collector):
        collector = make_collector() if make_collector else ParallelCollector(2)
        clients = make_clients(4)
        clients[2] = self.ExplodingClient(
            2, clients[2].dataset, batch_size=4, rng=np.random.default_rng(0)
        )
        model = make_model()
        # Simulate a buffer still holding the previous round's gradients.
        out = np.full((4, model.num_parameters()), 7.0)
        try:
            with pytest.raises(RuntimeError, match="boom"):
                collector.collect(clients, model, out)
        finally:
            collector.close()
        # No row may still hold the previous round's values: each row is
        # either this round's gradient or NaN.
        assert not np.any(out == 7.0)
        assert np.all(np.isnan(out[2]))

    def test_successful_round_overwrites_invalidation(self):
        clients = make_clients(5)
        model = make_model()
        out = np.full((5, model.num_parameters()), np.nan)
        SequentialCollector().collect(clients, model, out)
        assert np.all(np.isfinite(out))


def run_batchnorm_rounds(make_collector, rounds=3, n_clients=6, seed=0):
    """Collect ``rounds`` rounds with a BatchNorm model; return the final
    round buffer, evaluation metrics, and the global model's buffers.

    Shared with ``test_fl_process_collect.py`` so every backend is checked
    against the same sequential reference.
    """
    split = build_dataset(
        "mnist_like",
        num_train=180,
        num_test=60,
        rng=np.random.default_rng(seed),
    )
    rng_factory = RngFactory(seed)
    indices = np.array_split(np.arange(180), n_clients)
    clients = [
        BenignClient(
            cid,
            split.train.subset(idx),
            batch_size=16,
            rng=rng_factory.make(f"client-{cid}"),
        )
        for cid, idx in enumerate(indices)
    ]
    model = BatchNormMLP()
    out = np.empty((n_clients, model.num_parameters()))
    with make_collector() as collector:
        for _ in range(rounds):
            collector.collect(clients, model, out)
    accuracy, loss = evaluate_model(model, split.test)
    buffers = {name: value.copy() for name, value in model.named_buffers()}
    return out.copy(), accuracy, loss, buffers


class TestBatchNormBufferParity:
    """Sequential and threaded collect agree on BatchNorm buffers and eval.

    Worker replicas log their per-batch statistics and the collector replays
    them onto the global model in client order, so running statistics — and
    therefore evaluation metrics — are bit-identical between backends.
    """

    def test_threaded_buffers_and_eval_match_sequential(self):
        seq_out, seq_acc, seq_loss, seq_buffers = run_batchnorm_rounds(
            SequentialCollector
        )
        par_out, par_acc, par_loss, par_buffers = run_batchnorm_rounds(
            lambda: ParallelCollector(3)
        )
        assert np.array_equal(seq_out, par_out)
        assert seq_acc == par_acc
        assert seq_loss == par_loss
        assert set(seq_buffers) == set(par_buffers)
        for name in seq_buffers:
            assert np.array_equal(seq_buffers[name], par_buffers[name]), name

    def test_global_model_buffers_actually_updated(self):
        # The replay must reach the *global* model: after collect rounds the
        # running statistics have moved away from their (0, 1) init.
        _, _, _, buffers = run_batchnorm_rounds(
            lambda: ParallelCollector(2), rounds=2
        )
        mean_name = next(name for name in buffers if "running_mean" in name)
        assert not np.allclose(buffers[mean_name], 0.0)
