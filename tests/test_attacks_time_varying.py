"""Tests for the time-varying attack strategy (Fig. 5)."""

import numpy as np
import pytest

from repro.attacks import AttackContext, TimeVaryingAttack
from repro.attacks.simple import RandomAttack, SignFlipAttack
from repro.attacks.time_varying import default_attack_pool


def make_context(round_index, rng):
    return AttackContext.make(
        round_index=round_index, num_clients=20, byzantine_indices=np.arange(4), rng=rng
    )


class TestTimeVaryingAttack:
    def test_default_pool_contains_no_attack(self):
        names = {attack.name for attack in default_attack_pool()}
        assert "no_attack" in names
        assert "lie" in names and "byzmean" in names

    def test_switches_between_rounds(self, rng):
        attack = TimeVaryingAttack(rng=0)
        chosen = {attack.current_attack(r).name for r in range(30)}
        assert len(chosen) > 1

    def test_constant_within_a_switch_period(self):
        attack = TimeVaryingAttack(switch_every=5, rng=0)
        names = [attack.current_attack(r).name for r in range(5)]
        assert len(set(names)) == 1

    def test_craft_delegates_to_current_attack(self, benign_gradients, rng):
        attack = TimeVaryingAttack(pool=[SignFlipAttack()], rng=0)
        malicious = attack.craft(benign_gradients, make_context(0, rng))
        np.testing.assert_array_equal(malicious, -benign_gradients[:4])

    def test_custom_pool(self, benign_gradients, rng):
        attack = TimeVaryingAttack(pool=[RandomAttack(), SignFlipAttack()], rng=1)
        submitted = attack.apply(benign_gradients, make_context(3, rng))
        assert submitted.shape == benign_gradients.shape

    def test_never_poisons_data(self):
        assert TimeVaryingAttack(rng=0).poisons_data is False

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            TimeVaryingAttack(pool=[])

    def test_invalid_switch_period_rejected(self):
        with pytest.raises(ValueError):
            TimeVaryingAttack(switch_every=0)

    def test_seeded_schedule_is_reproducible(self):
        a = [TimeVaryingAttack(rng=5).current_attack(r).name for r in range(10)]
        b = [TimeVaryingAttack(rng=5).current_attack(r).name for r in range(10)]
        assert a == b
