"""Tests for the Little-Is-Enough attack and its supporting math."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.attacks import AttackContext, LittleIsEnoughAttack, lie_z_max


@pytest.fixture
def context(rng):
    return AttackContext.make(num_clients=20, byzantine_indices=np.arange(4), rng=rng)


class TestLieZMax:
    def test_matches_closed_form(self):
        n, m = 50, 10
        supporters = n - int(np.floor(n / 2 + 1))
        expected = norm.ppf(supporters / (n - m))
        assert lie_z_max(n, m) == pytest.approx(expected)

    def test_increases_with_byzantine_count(self):
        assert lie_z_max(50, 20) > lie_z_max(50, 5)

    def test_paper_scale(self):
        """For n=50, m=10 the maximal factor is a small positive number (<1)."""
        z = lie_z_max(50, 10)
        assert 0.0 < z < 1.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            lie_z_max(1, 0)
        with pytest.raises(ValueError):
            lie_z_max(10, 10)


class TestLittleIsEnoughAttack:
    def test_crafted_matches_equation_one(self, benign_gradients, context):
        attack = LittleIsEnoughAttack(z=0.3, use_benign_statistics=False)
        malicious = attack.craft(benign_gradients, context)
        mu = benign_gradients.mean(axis=0)
        sigma = benign_gradients.std(axis=0)
        np.testing.assert_allclose(malicious[0], mu - 0.3 * sigma)

    def test_all_byzantine_rows_identical(self, benign_gradients, context):
        malicious = LittleIsEnoughAttack(z=0.3).craft(benign_gradients, context)
        for row in malicious[1:]:
            np.testing.assert_array_equal(row, malicious[0])

    def test_benign_statistics_mode_excludes_byzantine_rows(
        self, benign_gradients, context
    ):
        attack = LittleIsEnoughAttack(z=0.5, use_benign_statistics=True)
        malicious = attack.craft(benign_gradients, context)
        benign = benign_gradients[4:]
        expected = benign.mean(axis=0) - 0.5 * benign.std(axis=0)
        np.testing.assert_allclose(malicious[0], expected)

    def test_adaptive_z_uses_z_max(self, benign_gradients, context):
        attack = LittleIsEnoughAttack(z=None)
        assert attack.attack_factor(context) == pytest.approx(lie_z_max(20, 4))

    def test_zero_z_sends_the_mean(self, benign_gradients, context):
        attack = LittleIsEnoughAttack(z=0.0, use_benign_statistics=False)
        malicious = attack.craft(benign_gradients, context)
        np.testing.assert_allclose(malicious[0], benign_gradients.mean(axis=0))

    def test_negative_z_rejected(self):
        with pytest.raises(ValueError):
            LittleIsEnoughAttack(z=-0.1)

    def test_stealthiness_against_distance(self, rng):
        """Prop. 1: the LIE gradient can be closer to the mean than some honest one."""
        honest = rng.normal(0.05, 1.0, size=(30, 400))
        context = AttackContext.make(
            num_clients=30, byzantine_indices=np.arange(6), rng=rng
        )
        attack = LittleIsEnoughAttack(z=0.2, use_benign_statistics=False)
        malicious = attack.craft(honest, context)[0]
        mean = honest.mean(axis=0)
        malicious_distance = np.linalg.norm(malicious - mean)
        honest_distances = np.linalg.norm(honest - mean, axis=1)
        assert np.any(honest_distances > malicious_distance)

    def test_sign_disruption_grows_with_z(self, rng):
        """The SignGuard insight: larger z flips more coordinate signs."""
        honest = rng.normal(0.1, 0.5, size=(30, 1000))
        mean = honest.mean(axis=0)
        std = honest.std(axis=0)

        def disagreement(z):
            crafted = mean - z * std
            return np.mean(np.sign(crafted) != np.sign(mean))

        assert disagreement(1.0) > disagreement(0.3) > disagreement(0.0)
