"""Tests for SignGuard's gradient feature extraction."""

import numpy as np
import pytest

from repro.core.features import (
    cosine_similarity_feature,
    euclidean_distance_feature,
    extract_features,
    select_random_coordinates,
    sign_statistics,
)


class TestSignStatistics:
    def test_rows_sum_to_one(self, benign_gradients):
        stats = sign_statistics(benign_gradients)
        np.testing.assert_allclose(stats.sum(axis=1), 1.0, atol=1e-12)

    def test_known_vector(self):
        stats = sign_statistics(np.array([[1.0, -1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(stats[0], [0.5, 0.25, 0.25])

    def test_sign_flip_swaps_positive_and_negative(self, benign_gradients):
        stats = sign_statistics(benign_gradients)
        flipped = sign_statistics(-benign_gradients)
        np.testing.assert_allclose(stats[:, 0], flipped[:, 2])
        np.testing.assert_allclose(stats[:, 2], flipped[:, 0])
        np.testing.assert_allclose(stats[:, 1], flipped[:, 1])

    def test_coordinate_subset(self, benign_gradients):
        stats = sign_statistics(benign_gradients, coordinates=np.array([0, 1, 2]))
        assert stats.shape == (len(benign_gradients), 3)

    def test_zero_tolerance_counts_small_values_as_zero(self):
        vector = np.array([[1e-6, -1e-6, 1.0]])
        strict = sign_statistics(vector)
        tolerant = sign_statistics(vector, zero_tolerance=1e-3)
        assert strict[0, 1] == pytest.approx(0.0)
        assert tolerant[0, 1] == pytest.approx(2 / 3)

    def test_empty_coordinate_subset_rejected(self, benign_gradients):
        with pytest.raises(ValueError):
            sign_statistics(benign_gradients, coordinates=np.array([], dtype=int))

    def test_lie_attack_shifts_sign_statistics(self, rng):
        """The paper's core observation (Fig. 2): LIE shifts the sign balance."""
        honest = rng.normal(0.1, 0.5, size=(30, 2000))
        mean = honest.mean(axis=0)
        std = honest.std(axis=0)
        crafted = mean - 1.0 * std
        honest_stats = sign_statistics(np.atleast_2d(mean))[0]
        malicious_stats = sign_statistics(np.atleast_2d(crafted))[0]
        assert malicious_stats[2] > honest_stats[2] + 0.2  # many more negatives


class TestSelectRandomCoordinates:
    def test_fraction_of_dim(self, rng):
        coords = select_random_coordinates(1000, 0.1, rng)
        assert len(coords) == 100
        assert len(np.unique(coords)) == 100

    def test_at_least_one_coordinate(self, rng):
        assert len(select_random_coordinates(5, 0.01, rng)) == 1

    def test_invalid_fraction_rejected(self, rng):
        with pytest.raises(ValueError):
            select_random_coordinates(10, 1.5, rng)


class TestSimilarityFeatures:
    def test_cosine_to_reference(self, rng):
        reference = np.ones(50)
        gradients = np.vstack([reference, -reference])
        cosines = cosine_similarity_feature(gradients, reference)
        np.testing.assert_allclose(cosines, [1.0, -1.0], atol=1e-9)

    def test_cosine_pairwise_fallback_detects_outlier(self, rng):
        honest = np.tile(np.ones(50), (8, 1)) + rng.normal(0, 0.05, size=(8, 50))
        outlier = -np.ones((1, 50))
        cosines = cosine_similarity_feature(np.vstack([honest, outlier]), None)
        assert cosines[-1] < cosines[:-1].min()

    def test_euclidean_to_reference(self):
        reference = np.full(10, 0.1)
        gradients = np.vstack([np.full(10, 0.1), np.ones(10)])
        distances = euclidean_distance_feature(gradients, reference)
        assert distances[0] < distances[1]

    def test_zero_reference_triggers_fallback_for_both_features(self, rng):
        """A missing and an all-zero reference must behave identically (and the
        same way for the cosine and Euclidean features)."""
        gradients = rng.normal(size=(6, 30))
        zero = np.zeros(30)
        np.testing.assert_array_equal(
            cosine_similarity_feature(gradients, zero),
            cosine_similarity_feature(gradients, None),
        )
        np.testing.assert_array_equal(
            euclidean_distance_feature(gradients, zero),
            euclidean_distance_feature(gradients, None),
        )

    def test_wrong_size_reference_triggers_fallback_for_both_features(self, rng):
        gradients = rng.normal(size=(6, 30))
        wrong = np.ones(7)
        np.testing.assert_array_equal(
            cosine_similarity_feature(gradients, wrong),
            cosine_similarity_feature(gradients, None),
        )
        np.testing.assert_array_equal(
            euclidean_distance_feature(gradients, wrong),
            euclidean_distance_feature(gradients, None),
        )

    def test_all_zero_gradients_give_zero_cosine_fallback(self):
        """A fully zero round (fresh model) must yield 0-valued cosine
        features, not NaN — the clustering filter then trusts everyone."""
        gradients = np.zeros((4, 10))
        with np.errstate(all="raise"):
            cosines = cosine_similarity_feature(gradients, None)
        np.testing.assert_array_equal(cosines, np.zeros(4))

    def test_single_client_fallback_has_no_nan(self):
        """One client + no reference must not hit the all-NaN nanmedian path."""
        gradients = np.ones((1, 12))
        with np.errstate(all="raise"):
            cosine = cosine_similarity_feature(gradients, None)
            distance = euclidean_distance_feature(gradients, None)
        np.testing.assert_array_equal(cosine, [1.0])
        np.testing.assert_array_equal(distance, [0.0])

    def test_euclidean_pairwise_fallback(self, rng):
        honest = rng.normal(0, 0.1, size=(9, 20))
        outlier = 50.0 * np.ones((1, 20))
        distances = euclidean_distance_feature(np.vstack([honest, outlier]), None)
        assert distances[-1] > distances[:-1].max()


class TestExtractFeatures:
    def test_plain_variant_has_three_features(self, benign_gradients, rng):
        features = extract_features(benign_gradients, rng=rng)
        assert features.matrix.shape == (len(benign_gradients), 3)
        assert features.feature_names == (
            "positive_fraction",
            "zero_fraction",
            "negative_fraction",
        )

    def test_similarity_variants_add_a_column(self, benign_gradients, rng):
        for similarity, name in (
            ("cosine", "cosine_similarity"),
            ("euclidean", "euclidean_distance"),
        ):
            features = extract_features(
                benign_gradients, similarity=similarity, rng=rng
            )
            assert features.matrix.shape == (len(benign_gradients), 4)
            assert features.feature_names[-1] == name

    def test_coordinate_fraction_controls_subset_size(self, benign_gradients, rng):
        features = extract_features(benign_gradients, coordinate_fraction=0.2, rng=rng)
        assert len(features.coordinates) == int(round(0.2 * benign_gradients.shape[1]))

    def test_unknown_similarity_rejected(self, benign_gradients, rng):
        with pytest.raises(ValueError):
            extract_features(benign_gradients, similarity="manhattan", rng=rng)

    def test_seeded_extraction_is_deterministic(self, benign_gradients):
        a = extract_features(benign_gradients, rng=3).matrix
        b = extract_features(benign_gradients, rng=3).matrix
        np.testing.assert_array_equal(a, b)
