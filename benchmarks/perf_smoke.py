#!/usr/bin/env python
"""Round-engine perf smoke: optimized hot paths vs frozen seed implementations.

Runs in well under 60 seconds and produces ``BENCH_round_engine.json`` (at
the repository root by default), the machine-readable evidence for this
repo's round-level speedups:

* ``signguard_pipeline``   — full ``SignGuardPipeline.aggregate`` (plain
  variant) at n=100 clients, dim=100k, vs the seed pipeline.
* ``krum_scoring_round``   — Krum scoring *inside a round* (the distance
  matrix is shared round-level state) vs the seed per-call Gram rebuild.
* ``bulyan``               — full Bulyan aggregation vs the seed's
  per-iteration Gram rebuild.
* ``meanshift``            — vectorized Mean-Shift fit vs the seed's
  per-iteration full recompute + Python merge loop; a ``meanshift/binned``
  row records the grid-seeded (``bin_seeding=True``) fit vs the unbinned
  one at the same n=400 feature set, after asserting both discover the
  same trusted majority.
* ``collect_gradients``    — the round's collect stage at n=100 clients:
  sequential loop vs :class:`repro.fl.ParallelCollector` with 4 workers.
  Clients carry a small simulated dispatch latency (``time.sleep``, GIL
  released), standing in for the client round-trip of a deployed
  federation — that waiting is what the thread pool overlaps, and on
  multi-core hosts the numpy compute parallelizes on top of it.  The
  latency is recorded in the JSON (``simulated_client_latency_s``) so the
  number is never mistaken for a single-core compute speedup.  A pure
  compute-bound variant (no latency) is recorded for the threaded backend
  as context without a floor, and for the **process** backend
  (:class:`repro.fl.ProcessCollector`, shared-memory round buffer) with a
  >= 1.5x floor that is enforced whenever the host has more than one core
  (``cpu_count`` is recorded in the JSON; on a single-core host the
  process pool cannot beat sequential and the floor is reported as
  skipped).  The threaded and process float64 buffers are verified
  **bit-identical** to the sequential one before any timing is trusted.
* ``collect_gradients_sampled`` — the same collect stage under partial
  participation (a 20% cohort via ``rows=``): a sampled round must be
  measurably cheaper than a full round (>= 2x floor), because collect cost
  scales with the cohort, not the population.  Non-contiguous subsets are
  first verified **bit-identical** across all three backends.
* ``collect_gradients_cpu_bound/distributed2`` — the **distributed**
  backend (:class:`repro.fl.transport.DistributedCollector`) over a
  two-worker localhost ``repro-worker`` fleet (real subprocesses), on the
  same compute-bound workload.  Recorded as context without a floor (the
  point of the backend is multi-*host* scale, which localhost cannot
  demonstrate); the JSON records ``bytes_per_round`` on the wire and
  ``cpu_count``.  Before any timing, full **and** sampled distributed
  collects are verified bit-identical to the sequential path over an
  in-process fleet.
* ``collect_gradients_wire_codec/<codec>`` — one row per registered
  gradient wire codec (``raw``, ``sign1bit``, ``int8``, ``fp16``,
  ``topk``): the same distributed collect with the codec negotiated,
  recording the **steady-state received bytes per round** and the
  compression ratio vs ``raw``.  Two floors are enforced (ISSUE 7's
  acceptance numbers): ``sign1bit`` must receive <= raw/16 and ``int8``
  <= raw/4, each plus a small fixed-overhead allowance for message
  envelopes and trailers.
* ``profiled_round``       — per-stage timings of real federated rounds via
  :class:`repro.perf.RoundProfiler`, including per-worker collect stages
  (context, not a speedup claim).
* ``large_cohort/*``       — the n=10,000 tier from ``large_cohort.py``:
  blocked Krum scoring, streamed SignGuard features, subsampled Mean-Shift
  bandwidth, and DnC power iteration, each under its memory floor (no
  n x n allocation, proved by ``tracemalloc``) and speedup floors.
  Recorded on full/``--quick`` runs; ``--check`` skips it because CI
  enforces the same floors in a dedicated ``large_cohort.py --check``
  step.

Every bench row additionally records ``peak_rss_bytes``, the process
high-water-mark RSS at measurement time (stamped by ``run_benchmark``).

The script **fails loudly** (non-zero exit) when an optimized path stops
using the cache (detected via ``GradientBatch.compute_counts``), when the
threaded collect stops matching the sequential collect bit-for-bit, or when
a speedup regresses below its floor.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--output PATH] [--quick]
    PYTHONPATH=src python benchmarks/perf_smoke.py --check   # CI: no rewrite
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.aggregators.base import ServerContext  # noqa: E402
from repro.aggregators.bulyan import BulyanAggregator  # noqa: E402
from repro.aggregators.krum import (  # noqa: E402
    krum_scores_from_sq_distances,
)
from repro.clustering import MeanShift  # noqa: E402
from repro.core.pipeline import SignGuardPipeline  # noqa: E402
from repro.data.factory import build_dataset  # noqa: E402
from repro.fl.client import BenignClient  # noqa: E402
from repro.fl import (  # noqa: E402
    ParallelCollector,
    ProcessCollector,
    SequentialCollector,
)
from repro.fl.transport import (  # noqa: E402
    DistributedCollector,
    spawn_local_fleet,
    start_thread_fleet,
    wire_codec_names,
)
from repro.nn.models.factory import build_model  # noqa: E402
from repro.perf import (  # noqa: E402
    RoundProfiler,
    run_benchmark,
    speedup,
    write_bench_json,
)
from repro.perf import reference as ref  # noqa: E402
from repro.utils.batch import GradientBatch  # noqa: E402
from repro.utils.rng import RngFactory  # noqa: E402

import large_cohort  # noqa: E402  (sibling module in benchmarks/)


class SmokeFailure(RuntimeError):
    """Raised when the optimized path regressed or fell back to naive code."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def make_population(n_clients: int, dim: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    signal = rng.normal(0.05, 1.0, size=dim)
    honest = signal[None, :] + rng.normal(
        0, 0.3, size=(n_clients - n_clients // 5, dim)
    )
    malicious = -signal[None, :] + rng.normal(0, 0.05, size=(n_clients // 5, dim))
    return np.vstack([honest, malicious])


def check_cache_discipline(gradients: np.ndarray) -> None:
    """Prove the optimized round never recomputes a cached quantity.

    This is the "no silent fallback to naive" guard: if a future change stops
    consuming the shared GradientBatch, a quantity's compute count goes to 0
    (bypassed entirely — recomputed outside the cache) or above 1 and this
    check fails the smoke run.
    """
    batch = GradientBatch(gradients)
    pipeline = SignGuardPipeline(similarity="euclidean")
    pipeline.aggregate(batch, rng=np.random.default_rng(0))
    context = ServerContext.make(rng=0, num_byzantine_hint=len(gradients) // 5)
    context.batch = batch
    BulyanAggregator().aggregate(batch.matrix, context)
    for name in ("norms", "gram", "sq_distances", "distances"):
        count = batch.compute_count(name)
        _require(
            count == 1,
            f"cache discipline violated: '{name}' computed {count} times "
            "(expected exactly 1 across pipeline + Bulyan in one round)",
        )


class LatencyClient(BenignClient):
    """Benign client with a simulated per-dispatch communication delay.

    A deployed federation pays a network round-trip per client; the
    ``time.sleep`` stand-in releases the GIL exactly like socket I/O would,
    so the thread pool overlaps the waits the same way it would overlap real
    latency.  ``latency_s=0`` gives the pure compute-bound case.
    """

    def __init__(self, *args, latency_s: float = 0.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.latency_s = latency_s

    def compute_gradient(self, model):
        if self.latency_s:
            time.sleep(self.latency_s)
        return super().compute_gradient(model)


def make_collect_population(
    n_clients: int, latency_s: float, seed: int = 0, *, plain_clients: bool = False
):
    """(clients, model, buffer) for the collect-stage benchmark.

    Every client's batch-sampling RNG is an :class:`RngFactory` child stream
    fixed here — before any dispatch — which is what makes the threaded
    collect bit-identical to the sequential one.

    ``plain_clients=True`` builds :class:`BenignClient`\\ s (importable from
    ``repro``) instead of the script-local :class:`LatencyClient` — required
    when the population is pickled to ``repro-worker`` subprocesses, which
    cannot import this script's ``__main__`` classes.
    """
    samples_per_client = 20
    split = build_dataset(
        "mnist_like",
        num_train=n_clients * samples_per_client,
        num_test=16,
        rng=np.random.default_rng(seed),
    )
    rng_factory = RngFactory(seed)
    partitions = np.array_split(np.arange(len(split.train)), n_clients)
    client_kwargs = {} if plain_clients else {"latency_s": latency_s}
    client_cls = BenignClient if plain_clients else LatencyClient
    clients = [
        client_cls(
            client_id,
            split.train.subset(indices),
            batch_size=16,
            rng=rng_factory.make(f"client-{client_id}"),
            **client_kwargs,
        )
        for client_id, indices in enumerate(partitions)
    ]
    model = build_model(
        "mlp", split.spec, rng=rng_factory.make("model"), params={"hidden_dims": (32,)}
    )
    buffer = np.empty((n_clients, model.num_parameters()), dtype=np.float64)
    return clients, model, buffer


def check_collect_equivalence(n_clients: int) -> None:
    """Threaded and process float64 collect must be bit-identical to
    sequential (same per-client RNG streams, fixed before dispatch)."""
    clients_a, model, buffer_a = make_collect_population(n_clients, latency_s=0.0)
    clients_b, _, buffer_b = make_collect_population(n_clients, latency_s=0.0)
    clients_c, _, buffer_c = make_collect_population(n_clients, latency_s=0.0)
    SequentialCollector().collect(clients_a, model, buffer_a)
    with ParallelCollector(4) as collector:
        collector.collect(clients_b, model, buffer_b)
    _require(
        bool(np.array_equal(buffer_a, buffer_b)),
        "threaded float64 collect is not bit-identical to the sequential path",
    )
    with ProcessCollector(2) as collector:
        collector.collect(clients_c, model, buffer_c)
    _require(
        bool(np.array_equal(buffer_a, buffer_c)),
        "process float64 collect is not bit-identical to the sequential path",
    )


def check_sampled_collect_equivalence(n_clients: int) -> None:
    """A non-contiguous participation subset must be bit-identical across
    all three backends (round-1 rows also match a full collect's rows)."""
    rows = list(range(1, n_clients, 3))
    clients_full, model, buffer_full = make_collect_population(n_clients, latency_s=0.0)
    SequentialCollector().collect(clients_full, model, buffer_full)
    reference = buffer_full[rows]
    for label, make_collector in (
        ("sequential", SequentialCollector),
        ("threaded", lambda: ParallelCollector(4)),
        ("process", lambda: ProcessCollector(2)),
    ):
        clients, _, _ = make_collect_population(n_clients, latency_s=0.0)
        subset = np.empty((len(rows), model.num_parameters()))
        with make_collector() as collector:
            collector.collect(clients, model, subset, rows=rows)
        _require(
            bool(np.array_equal(reference, subset)),
            f"{label} sampled collect is not bit-identical to the "
            "sequential full collect's sampled rows",
        )


def check_distributed_collect_equivalence(n_clients: int) -> None:
    """Full and sampled distributed collects must be bit-identical to the
    sequential path (client RNG streams live in the owning worker)."""
    clients_ref, model, buffer_ref = make_collect_population(n_clients, latency_s=0.0)
    SequentialCollector().collect(clients_ref, model, buffer_ref)
    rows = list(range(1, n_clients, 3))
    with start_thread_fleet(2) as fleet:
        clients, _, buffer = make_collect_population(n_clients, latency_s=0.0)
        with DistributedCollector(fleet.addresses) as collector:
            collector.collect(clients, model, buffer)
            _require(
                bool(np.array_equal(buffer_ref, buffer)),
                "distributed float64 collect is not bit-identical to the "
                "sequential path",
            )
            _require(
                collector.failed_rows == (),
                "healthy localhost fleet reported failed rows",
            )
    with start_thread_fleet(3) as fleet:
        clients, _, _ = make_collect_population(n_clients, latency_s=0.0)
        subset = np.empty((len(rows), model.num_parameters()))
        with DistributedCollector(fleet.addresses) as collector:
            collector.collect(clients, model, subset, rows=rows)
        _require(
            bool(np.array_equal(buffer_ref[rows], subset)),
            "distributed sampled collect is not bit-identical to the "
            "sequential full collect's sampled rows",
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_round_engine.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller problem sizes (CI smoke); skips the acceptance-size run",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "CI regression gate: run at --quick sizes, enforce every floor "
            "and equivalence guard, and do NOT write the baseline JSON"
        ),
    )
    args = parser.parse_args(argv)
    if args.check:
        args.quick = True

    if args.quick:
        n_clients, dim, repeats = 50, 20_000, 2
    else:
        n_clients, dim, repeats = 100, 100_000, 3
    f = n_clients // 5
    collect_clients = 100  # the acceptance size for the collect stage
    collect_latency_s = 0.008
    collect_workers = 4

    print(f"perf smoke: n_clients={n_clients} dim={dim} repeats={repeats}")
    gradients = make_population(n_clients, dim)
    results = []

    # ------------------------------------------------------------------
    # Guard: optimized paths actually consume the cache.
    # ------------------------------------------------------------------
    check_cache_discipline(gradients)
    print("cache discipline: OK (each derived quantity computed exactly once)")

    # ------------------------------------------------------------------
    # SignGuardPipeline.aggregate (plain variant)
    # ------------------------------------------------------------------
    pipeline = SignGuardPipeline()
    seed_pipeline = run_benchmark(
        lambda: ref.signguard_pipeline_reference(
            gradients, rng=np.random.default_rng(1)
        ),
        name="signguard_pipeline/seed",
        repeats=repeats,
    )
    optimized_pipeline = run_benchmark(
        lambda: pipeline.aggregate(gradients, rng=np.random.default_rng(1)),
        name="signguard_pipeline/optimized",
        repeats=repeats,
    )
    pipeline_speedup = speedup(seed_pipeline, optimized_pipeline)
    print(
        f"signguard_pipeline: seed {seed_pipeline.best_s * 1e3:.1f} ms -> "
        f"optimized {optimized_pipeline.best_s * 1e3:.1f} ms "
        f"({pipeline_speedup:.2f}x)"
    )

    # ------------------------------------------------------------------
    # Krum scoring as part of a round (distance matrix is round state)
    # ------------------------------------------------------------------
    seed_krum = run_benchmark(
        lambda: ref.krum_scores_reference(gradients, f),
        name="krum_scoring_round/seed",
        repeats=repeats,
    )
    round_batch = GradientBatch(gradients)
    round_batch.sq_distances()  # the round has computed its distances once
    optimized_krum = run_benchmark(
        lambda: krum_scores_from_sq_distances(round_batch.sq_distances(), f),
        name="krum_scoring_round/optimized",
        repeats=repeats,
    )
    krum_speedup = speedup(seed_krum, optimized_krum)
    print(
        f"krum_scoring_round: seed {seed_krum.best_s * 1e3:.1f} ms -> "
        f"optimized {optimized_krum.best_s * 1e3:.3f} ms ({krum_speedup:.0f}x)"
    )

    # ------------------------------------------------------------------
    # Bulyan end-to-end
    # ------------------------------------------------------------------
    bulyan = BulyanAggregator(num_byzantine=f)
    seed_bulyan = run_benchmark(
        lambda: ref.bulyan_reference(gradients, f),
        name="bulyan/seed",
        repeats=1,
        warmup=0,
    )
    optimized_bulyan = run_benchmark(
        lambda: bulyan(gradients, ServerContext.make(rng=0)),
        name="bulyan/optimized",
        repeats=repeats,
    )
    bulyan_speedup = speedup(seed_bulyan, optimized_bulyan)
    print(
        f"bulyan: seed {seed_bulyan.best_s:.2f} s -> "
        f"optimized {optimized_bulyan.best_s:.3f} s ({bulyan_speedup:.1f}x)"
    )

    # ------------------------------------------------------------------
    # Mean-Shift on a large feature set
    # ------------------------------------------------------------------
    feature_rng = np.random.default_rng(2)
    features = np.vstack(
        [
            feature_rng.normal([0.6, 0.05, 0.35], 0.02, size=(300, 3)),
            feature_rng.normal([0.3, 0.05, 0.65], 0.02, size=(100, 3)),
        ]
    )
    seed_meanshift = run_benchmark(
        lambda: ref.meanshift_reference(features, quantile=0.5),
        name="meanshift/seed",
        repeats=repeats,
    )
    optimized_meanshift = run_benchmark(
        lambda: MeanShift(quantile=0.5).fit(features),
        name="meanshift/optimized",
        repeats=repeats,
    )
    meanshift_speedup = speedup(seed_meanshift, optimized_meanshift)
    print(
        f"meanshift: seed {seed_meanshift.best_s * 1e3:.1f} ms -> "
        f"optimized {optimized_meanshift.best_s * 1e3:.1f} ms "
        f"({meanshift_speedup:.2f}x)"
    )

    # Binned seeding (sklearn-style bin_seeding): the shift iterations run
    # from occupied grid cells instead of every sample.  Must discover the
    # same trusted majority as the unbinned fit on these features.
    unbinned_fit = MeanShift(quantile=0.5).fit(features)
    binned_fit = MeanShift(quantile=0.5, bin_seeding=True).fit(features)
    _require(
        bool(
            np.array_equal(
                unbinned_fit.largest_cluster(), binned_fit.largest_cluster()
            )
        ),
        "binned Mean-Shift trusted majority diverged from the unbinned fit",
    )
    binned_meanshift = run_benchmark(
        lambda: MeanShift(quantile=0.5, bin_seeding=True).fit(features),
        name="meanshift/binned",
        repeats=repeats,
    )
    binned_meanshift_speedup = speedup(optimized_meanshift, binned_meanshift)
    print(
        f"meanshift_binned: unbinned {optimized_meanshift.best_s * 1e3:.1f} ms -> "
        f"binned {binned_meanshift.best_s * 1e3:.1f} ms "
        f"({binned_meanshift_speedup:.2f}x, n={len(features)} features)"
    )

    # ------------------------------------------------------------------
    # Collect stage: sequential loop vs 4-worker thread pool at n=100
    # ------------------------------------------------------------------
    check_collect_equivalence(16)
    print(
        "collect equivalence: OK "
        "(threaded + process float64 bit-identical to sequential)"
    )
    check_sampled_collect_equivalence(16)
    print(
        "sampled collect equivalence: OK "
        "(non-contiguous subsets bit-identical across all three backends)"
    )
    check_distributed_collect_equivalence(16)
    print(
        "distributed collect equivalence: OK "
        "(localhost fleet bit-identical to sequential, full + sampled)"
    )

    clients, collect_model, collect_buffer = make_collect_population(
        collect_clients, latency_s=collect_latency_s
    )
    sequential_collector = SequentialCollector()
    seed_collect = run_benchmark(
        lambda: sequential_collector.collect(clients, collect_model, collect_buffer),
        name="collect_gradients/sequential",
        repeats=repeats,
    )
    parallel_collector = ParallelCollector(collect_workers)
    threaded_collect = run_benchmark(
        lambda: parallel_collector.collect(clients, collect_model, collect_buffer),
        name=f"collect_gradients/threaded{collect_workers}",
        repeats=repeats,
    )
    parallel_collector.close()
    collect_speedup = speedup(seed_collect, threaded_collect)
    print(
        f"collect_gradients: sequential {seed_collect.best_s * 1e3:.0f} ms -> "
        f"threaded({collect_workers}) {threaded_collect.best_s * 1e3:.0f} ms "
        f"({collect_speedup:.2f}x, n={collect_clients}, "
        f"{collect_latency_s * 1e3:.0f} ms simulated client latency)"
    )

    # Sampled round (participation_fraction=0.2): the collect stage's cost
    # must scale with the cohort, not the population — the acceptance
    # criterion of the participation-aware round engine.
    sampled_fraction = 0.2
    sampled_rows = np.sort(
        np.random.default_rng(0).choice(
            collect_clients,
            size=max(1, int(round(sampled_fraction * collect_clients))),
            replace=False,
        )
    )
    sampled_buffer = np.empty(
        (len(sampled_rows), collect_model.num_parameters()), dtype=np.float64
    )
    sampled_collect = run_benchmark(
        lambda: sequential_collector.collect(
            clients, collect_model, sampled_buffer, rows=sampled_rows
        ),
        name=f"collect_gradients_sampled/cohort{len(sampled_rows)}",
        repeats=repeats,
    )
    sampled_collect_speedup = speedup(seed_collect, sampled_collect)
    print(
        f"collect_gradients_sampled: full {seed_collect.best_s * 1e3:.0f} ms -> "
        f"cohort({len(sampled_rows)}/{collect_clients}) "
        f"{sampled_collect.best_s * 1e3:.0f} ms "
        f"({sampled_collect_speedup:.2f}x cheaper per round)"
    )

    # Compute-bound variant (no latency): context only, no floor — on a
    # single-core host the GIL serializes the Python share of the work and
    # this hovers around 1x; multi-core hosts gain from parallel BLAS.
    cpu_clients, cpu_model, cpu_buffer = make_collect_population(
        collect_clients, latency_s=0.0
    )
    cpu_sequential = run_benchmark(
        lambda: SequentialCollector().collect(cpu_clients, cpu_model, cpu_buffer),
        name="collect_gradients_cpu_bound/sequential",
        repeats=repeats,
    )
    with ParallelCollector(collect_workers) as cpu_parallel:
        cpu_threaded = run_benchmark(
            lambda: cpu_parallel.collect(cpu_clients, cpu_model, cpu_buffer),
            name=f"collect_gradients_cpu_bound/threaded{collect_workers}",
            repeats=repeats,
        )
    cpu_collect_speedup = speedup(cpu_sequential, cpu_threaded)
    print(
        f"collect_gradients_cpu_bound: {cpu_collect_speedup:.2f}x "
        "(context only; GIL-bound on single-core hosts)"
    )

    # Process backend on the same compute-bound workload: worker processes
    # sidestep the GIL entirely, so this one carries a floor — enforced on
    # multi-core hosts, where the paper's experiments actually run.
    cpu_count = os.cpu_count() or 1
    enforce_process_floor = cpu_count >= 2
    proc_clients, proc_model, proc_buffer = make_collect_population(
        collect_clients, latency_s=0.0
    )
    with ProcessCollector(collect_workers) as process_collector:
        process_collect = run_benchmark(
            lambda: process_collector.collect(proc_clients, proc_model, proc_buffer),
            name=f"collect_gradients_cpu_bound/process{collect_workers}",
            repeats=repeats,
        )
    process_collect_speedup = speedup(cpu_sequential, process_collect)
    print(
        f"collect_gradients_cpu_bound/process: {process_collect_speedup:.2f}x "
        f"(cpu_count={cpu_count}, floor "
        f"{'enforced' if enforce_process_floor else 'skipped: single-core host'})"
    )

    # Distributed backend over a real two-worker localhost fleet: context
    # only (multi-host scale is the point; localhost shares the cores), but
    # the bytes-on-wire per round are the number deployments plan around.
    distributed_workers = 2
    dist_clients, dist_model, dist_buffer = make_collect_population(
        collect_clients, latency_s=0.0, plain_clients=True
    )
    with spawn_local_fleet(distributed_workers) as fleet:
        with DistributedCollector(fleet.addresses) as distributed_collector:
            distributed_collect = run_benchmark(
                lambda: distributed_collector.collect(
                    dist_clients, dist_model, dist_buffer
                ),
                name=f"collect_gradients_cpu_bound/distributed{distributed_workers}",
                repeats=repeats,
            )
            distributed_bytes_round = sum(distributed_collector.last_round_bytes)
    distributed_collect_speedup = speedup(cpu_sequential, distributed_collect)
    print(
        f"collect_gradients_cpu_bound/distributed: "
        f"{distributed_collect_speedup:.2f}x over TCP "
        f"({distributed_bytes_round / 2**20:.2f} MiB/round on the wire, "
        f"cpu_count={cpu_count}; context, no floor)"
    )

    # ------------------------------------------------------------------
    # Wire codecs: shard traffic per round under each negotiated codec
    # ------------------------------------------------------------------
    # Fresh population and fleet per codec; run_benchmark's warmup pass
    # absorbs the handshake + setup round, so the timed collects — and the
    # byte counters read afterwards — are steady-state rounds.
    codec_benches = []
    codec_bytes_by_name = {}
    for codec_name in wire_codec_names():
        codec_clients, codec_model, codec_buffer = make_collect_population(
            collect_clients, latency_s=0.0, plain_clients=True
        )
        with start_thread_fleet(distributed_workers) as fleet:
            with DistributedCollector(
                fleet.addresses, wire_codec=codec_name
            ) as codec_collector:
                codec_bench = run_benchmark(
                    lambda: codec_collector.collect(
                        codec_clients, codec_model, codec_buffer
                    ),
                    name=f"collect_gradients_wire_codec/{codec_name}",
                    repeats=repeats,
                )
                codec_bytes_by_name[codec_name] = int(
                    codec_collector.last_round_bytes[1]
                )
        codec_benches.append(codec_bench)
    raw_bytes_round = codec_bytes_by_name["raw"]
    codec_compression = {
        name: raw_bytes_round / max(1, received)
        for name, received in codec_bytes_by_name.items()
    }
    for codec_name in wire_codec_names():
        print(
            f"wire_codec/{codec_name}: "
            f"{codec_bytes_by_name[codec_name] / 2**20:.3f} MiB/round received "
            f"({codec_compression[codec_name]:.1f}x vs raw)"
        )

    # ------------------------------------------------------------------
    # Per-stage profile of real federated rounds (context numbers)
    # ------------------------------------------------------------------
    from repro import DataConfig, DefenseConfig, ExperimentConfig, TrainingConfig
    from repro.fl import run_experiment

    profiler = RoundProfiler()
    run_experiment(
        ExperimentConfig(
            num_clients=15,
            seed=0,
            data=DataConfig(dataset="mnist_like", num_train=300, num_test=100),
            training=TrainingConfig(model="mlp", rounds=5, batch_size=16, n_workers=2),
            defense=DefenseConfig(name="signguard"),
        ),
        profiler=profiler,
    )
    profile = profiler.to_dict()
    round_mean_ms = profile["stages"]["round_total"]["mean_s"] * 1e3
    worker_stages = sorted(
        s for s in profile["stages"] if s.startswith("collect_worker")
    )
    print(
        f"profiled_round: {profile['num_rounds']} rounds, mean {round_mean_ms:.1f} ms, "
        f"per-worker collect stages: {worker_stages}"
    )

    # ------------------------------------------------------------------
    # Large-cohort tier (n=10,000): blocked/streamed/subsampled defenses
    # under memory + speedup floors.  Skipped under --check because CI
    # enforces the identical floors in a dedicated large_cohort.py --check
    # step; recording runs embed the rows in BENCH_round_engine.json.
    # ------------------------------------------------------------------
    large_cohort_metadata = None
    if not args.check:
        large_results, large_cohort_metadata = large_cohort.run_large_cohort(
            quick=args.quick, require=_require
        )
        results.extend(large_results)

    collect_extra = {
        "n_clients": collect_clients,
        "n_workers": collect_workers,
        "simulated_client_latency_s": collect_latency_s,
        "model": "mlp(hidden=32)",
        "buffer_mb": collect_buffer.nbytes / 2**20,
    }
    cpu_extra = {
        "n_clients": collect_clients,
        "n_workers": collect_workers,
        "simulated_client_latency_s": 0.0,
        "model": "mlp(hidden=32)",
    }
    for bench, extra in (
        (seed_pipeline, {}),
        (optimized_pipeline, {"speedup_vs_seed": pipeline_speedup}),
        (seed_krum, {}),
        (optimized_krum, {"speedup_vs_seed": krum_speedup}),
        (seed_bulyan, {}),
        (optimized_bulyan, {"speedup_vs_seed": bulyan_speedup}),
        (seed_meanshift, {}),
        (optimized_meanshift, {"speedup_vs_seed": meanshift_speedup}),
        (binned_meanshift, {"speedup_vs_unbinned": binned_meanshift_speedup}),
    ):
        bench.extra.update({"n_clients": n_clients, "dim": dim, **extra})
        results.append(bench)
    seed_collect.extra.update(collect_extra)
    threaded_collect.extra.update(
        {**collect_extra, "speedup_vs_sequential": collect_speedup}
    )
    sampled_collect.extra.update(
        {
            **collect_extra,
            "participation_fraction": sampled_fraction,
            "cohort_size": int(len(sampled_rows)),
            "speedup_vs_full_round": sampled_collect_speedup,
        }
    )
    cpu_sequential.extra.update(cpu_extra)
    cpu_threaded.extra.update(
        {**cpu_extra, "speedup_vs_sequential": cpu_collect_speedup}
    )
    process_collect.extra.update(
        {
            **cpu_extra,
            "speedup_vs_sequential": process_collect_speedup,
            "cpu_count": cpu_count,
            "floor_enforced": enforce_process_floor,
        }
    )
    distributed_collect.extra.update(
        {
            **cpu_extra,
            "n_workers": distributed_workers,
            "speedup_vs_sequential": distributed_collect_speedup,
            "cpu_count": cpu_count,
            "bytes_per_round": distributed_bytes_round,
            "transport": "tcp localhost (repro-worker subprocesses)",
            "floor_enforced": False,
        }
    )
    for codec_bench in codec_benches:
        codec_name = codec_bench.name.rsplit("/", 1)[1]
        codec_bench.extra.update(
            {
                **cpu_extra,
                "n_workers": distributed_workers,
                "wire_codec": codec_name,
                "bytes_received_per_round": codec_bytes_by_name[codec_name],
                "compression_vs_raw": codec_compression[codec_name],
            }
        )
    results.extend(
        [
            seed_collect,
            threaded_collect,
            sampled_collect,
            cpu_sequential,
            cpu_threaded,
            process_collect,
            distributed_collect,
            *codec_benches,
        ]
    )

    metadata = {
        "suite": "round_engine",
        "quick": bool(args.quick),
        "n_clients": n_clients,
        "dim": dim,
        "num_byzantine": f,
        "collect": {
            "n_clients": collect_clients,
            "n_workers": collect_workers,
            "simulated_client_latency_s": collect_latency_s,
            "bit_identical_to_sequential": True,
            "cpu_count": cpu_count,
            "process_floor_enforced": enforce_process_floor,
        },
        "participation": {
            "sampled_fraction": sampled_fraction,
            "cohort_size": int(len(sampled_rows)),
            "subset_bit_identical_across_backends": True,
        },
        "distributed": {
            "n_workers": distributed_workers,
            "bytes_per_round": distributed_bytes_round,
            "bytes_per_round_by_codec": codec_bytes_by_name,
            "compression_vs_raw_by_codec": codec_compression,
            "cpu_count": cpu_count,
            "bit_identical_to_sequential": True,
        },
        "round_profile": profile["stages"],
        "large_cohort": large_cohort_metadata,
        "speedups": {
            "signguard_pipeline": pipeline_speedup,
            "krum_scoring_round": krum_speedup,
            "bulyan": bulyan_speedup,
            "meanshift": meanshift_speedup,
            "meanshift_binned_vs_unbinned": binned_meanshift_speedup,
            "collect_gradients": collect_speedup,
            "collect_gradients_sampled_vs_full": sampled_collect_speedup,
            "collect_gradients_cpu_bound": cpu_collect_speedup,
            "collect_gradients_cpu_bound_process": process_collect_speedup,
            "collect_gradients_cpu_bound_distributed": distributed_collect_speedup,
        },
    }
    if args.check:
        print("check mode: baseline JSON left untouched")
    else:
        write_bench_json(args.output, results, metadata=metadata)
        print(f"wrote {args.output}")

    # ------------------------------------------------------------------
    # Regression floors (fail loudly).
    # ------------------------------------------------------------------
    _require(
        pipeline_speedup >= 2.0,
        f"SignGuardPipeline speedup regressed: {pipeline_speedup:.2f}x < 2.0x",
    )
    _require(
        krum_speedup >= 2.0,
        f"round-level Krum scoring speedup regressed: {krum_speedup:.2f}x < 2.0x",
    )
    _require(
        bulyan_speedup >= 2.0,
        f"Bulyan speedup regressed: {bulyan_speedup:.2f}x < 2.0x",
    )
    _require(
        meanshift_speedup >= 1.0,
        f"Mean-Shift regressed below seed: {meanshift_speedup:.2f}x",
    )
    _require(
        collect_speedup >= 2.0,
        f"threaded collect speedup regressed: {collect_speedup:.2f}x < 2.0x "
        f"(n={collect_clients}, {collect_workers} workers)",
    )
    _require(
        sampled_collect_speedup >= 2.0,
        "sampled round collect is not measurably cheaper than a full round: "
        f"{sampled_collect_speedup:.2f}x < 2.0x "
        f"(cohort {len(sampled_rows)}/{collect_clients})",
    )
    _require(
        binned_meanshift_speedup >= 1.0,
        "binned Mean-Shift regressed below the unbinned fit: "
        f"{binned_meanshift_speedup:.2f}x",
    )
    # Per-round overhead every codec pays identically (message envelopes,
    # pickled trailers with per-client RNG states) — allowed on top of the
    # shard-traffic compression ratios.
    codec_overhead_allowance = 64 * 1024
    _require(
        codec_bytes_by_name["sign1bit"]
        <= raw_bytes_round / 16 + codec_overhead_allowance,
        "sign1bit wire traffic misses its 16x compression floor: "
        f"{codec_bytes_by_name['sign1bit']} bytes/round vs raw "
        f"{raw_bytes_round}",
    )
    _require(
        codec_bytes_by_name["int8"]
        <= raw_bytes_round / 4 + codec_overhead_allowance,
        "int8 wire traffic misses its 4x compression floor: "
        f"{codec_bytes_by_name['int8']} bytes/round vs raw {raw_bytes_round}",
    )
    if enforce_process_floor:
        _require(
            process_collect_speedup >= 1.5,
            "process collect speedup regressed: "
            f"{process_collect_speedup:.2f}x < 1.5x on a {cpu_count}-core host "
            f"(n={collect_clients}, {collect_workers} workers, compute-bound)",
        )
    else:
        print(
            "process collect floor skipped: single-core host "
            f"(recorded {process_collect_speedup:.2f}x as context)"
        )
    print("all speedup floors met")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SmokeFailure as failure:
        print(f"PERF SMOKE FAILURE: {failure}", file=sys.stderr)
        sys.exit(1)
