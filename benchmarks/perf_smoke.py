#!/usr/bin/env python
"""Round-engine perf smoke: optimized hot paths vs frozen seed implementations.

Runs in well under 60 seconds and produces ``BENCH_round_engine.json`` (at
the repository root by default), the machine-readable evidence for this
repo's round-level speedups:

* ``signguard_pipeline``   — full ``SignGuardPipeline.aggregate`` (plain
  variant) at n=100 clients, dim=100k, vs the seed pipeline.
* ``krum_scoring_round``   — Krum scoring *inside a round* (the distance
  matrix is shared round-level state) vs the seed per-call Gram rebuild.
* ``bulyan``               — full Bulyan aggregation vs the seed's
  per-iteration Gram rebuild.
* ``meanshift``            — vectorized Mean-Shift fit vs the seed's
  per-iteration full recompute + Python merge loop.
* ``profiled_round``       — per-stage timings of real federated rounds via
  :class:`repro.perf.RoundProfiler` (context, not a speedup claim).

The script **fails loudly** (non-zero exit) when an optimized path stops
using the cache (detected via ``GradientBatch.compute_counts``) or when a
speedup regresses below its floor.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--output PATH] [--quick]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.aggregators.base import ServerContext  # noqa: E402
from repro.aggregators.bulyan import BulyanAggregator  # noqa: E402
from repro.aggregators.krum import (  # noqa: E402
    krum_scores_from_sq_distances,
)
from repro.clustering import MeanShift  # noqa: E402
from repro.core.pipeline import SignGuardPipeline  # noqa: E402
from repro.perf import (  # noqa: E402
    RoundProfiler,
    run_benchmark,
    speedup,
    write_bench_json,
)
from repro.perf import reference as ref  # noqa: E402
from repro.utils.batch import GradientBatch  # noqa: E402


class SmokeFailure(RuntimeError):
    """Raised when the optimized path regressed or fell back to naive code."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def make_population(n_clients: int, dim: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    signal = rng.normal(0.05, 1.0, size=dim)
    honest = signal[None, :] + rng.normal(0, 0.3, size=(n_clients - n_clients // 5, dim))
    malicious = -signal[None, :] + rng.normal(0, 0.05, size=(n_clients // 5, dim))
    return np.vstack([honest, malicious])


def check_cache_discipline(gradients: np.ndarray) -> None:
    """Prove the optimized round never recomputes a cached quantity.

    This is the "no silent fallback to naive" guard: if a future change stops
    consuming the shared GradientBatch, a quantity's compute count goes to 0
    (bypassed entirely — recomputed outside the cache) or above 1 and this
    check fails the smoke run.
    """
    batch = GradientBatch(gradients)
    pipeline = SignGuardPipeline(similarity="euclidean")
    pipeline.aggregate(batch, rng=np.random.default_rng(0))
    context = ServerContext.make(rng=0, num_byzantine_hint=len(gradients) // 5)
    context.batch = batch
    BulyanAggregator().aggregate(batch.matrix, context)
    for name in ("norms", "gram", "sq_distances", "distances"):
        count = batch.compute_count(name)
        _require(
            count == 1,
            f"cache discipline violated: '{name}' computed {count} times "
            "(expected exactly 1 across pipeline + Bulyan in one round)",
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_round_engine.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller problem sizes (CI smoke); skips the acceptance-size run",
    )
    args = parser.parse_args(argv)

    if args.quick:
        n_clients, dim, repeats = 50, 20_000, 2
    else:
        n_clients, dim, repeats = 100, 100_000, 3
    f = n_clients // 5

    print(f"perf smoke: n_clients={n_clients} dim={dim} repeats={repeats}")
    gradients = make_population(n_clients, dim)
    results = []

    # ------------------------------------------------------------------
    # Guard: optimized paths actually consume the cache.
    # ------------------------------------------------------------------
    check_cache_discipline(gradients)
    print("cache discipline: OK (each derived quantity computed exactly once)")

    # ------------------------------------------------------------------
    # SignGuardPipeline.aggregate (plain variant)
    # ------------------------------------------------------------------
    pipeline = SignGuardPipeline()
    seed_pipeline = run_benchmark(
        lambda: ref.signguard_pipeline_reference(
            gradients, rng=np.random.default_rng(1)
        ),
        name="signguard_pipeline/seed",
        repeats=repeats,
    )
    optimized_pipeline = run_benchmark(
        lambda: pipeline.aggregate(gradients, rng=np.random.default_rng(1)),
        name="signguard_pipeline/optimized",
        repeats=repeats,
    )
    pipeline_speedup = speedup(seed_pipeline, optimized_pipeline)
    print(
        f"signguard_pipeline: seed {seed_pipeline.best_s * 1e3:.1f} ms -> "
        f"optimized {optimized_pipeline.best_s * 1e3:.1f} ms "
        f"({pipeline_speedup:.2f}x)"
    )

    # ------------------------------------------------------------------
    # Krum scoring as part of a round (distance matrix is round state)
    # ------------------------------------------------------------------
    seed_krum = run_benchmark(
        lambda: ref.krum_scores_reference(gradients, f),
        name="krum_scoring_round/seed",
        repeats=repeats,
    )
    round_batch = GradientBatch(gradients)
    round_batch.sq_distances()  # the round has computed its distances once
    optimized_krum = run_benchmark(
        lambda: krum_scores_from_sq_distances(round_batch.sq_distances(), f),
        name="krum_scoring_round/optimized",
        repeats=repeats,
    )
    krum_speedup = speedup(seed_krum, optimized_krum)
    print(
        f"krum_scoring_round: seed {seed_krum.best_s * 1e3:.1f} ms -> "
        f"optimized {optimized_krum.best_s * 1e3:.3f} ms ({krum_speedup:.0f}x)"
    )

    # ------------------------------------------------------------------
    # Bulyan end-to-end
    # ------------------------------------------------------------------
    bulyan = BulyanAggregator(num_byzantine=f)
    seed_bulyan = run_benchmark(
        lambda: ref.bulyan_reference(gradients, f),
        name="bulyan/seed",
        repeats=1,
        warmup=0,
    )
    optimized_bulyan = run_benchmark(
        lambda: bulyan(gradients, ServerContext.make(rng=0)),
        name="bulyan/optimized",
        repeats=repeats,
    )
    bulyan_speedup = speedup(seed_bulyan, optimized_bulyan)
    print(
        f"bulyan: seed {seed_bulyan.best_s:.2f} s -> "
        f"optimized {optimized_bulyan.best_s:.3f} s ({bulyan_speedup:.1f}x)"
    )

    # ------------------------------------------------------------------
    # Mean-Shift on a large feature set
    # ------------------------------------------------------------------
    feature_rng = np.random.default_rng(2)
    features = np.vstack(
        [
            feature_rng.normal([0.6, 0.05, 0.35], 0.02, size=(300, 3)),
            feature_rng.normal([0.3, 0.05, 0.65], 0.02, size=(100, 3)),
        ]
    )
    seed_meanshift = run_benchmark(
        lambda: ref.meanshift_reference(features, quantile=0.5),
        name="meanshift/seed",
        repeats=repeats,
    )
    optimized_meanshift = run_benchmark(
        lambda: MeanShift(quantile=0.5).fit(features),
        name="meanshift/optimized",
        repeats=repeats,
    )
    meanshift_speedup = speedup(seed_meanshift, optimized_meanshift)
    print(
        f"meanshift: seed {seed_meanshift.best_s * 1e3:.1f} ms -> "
        f"optimized {optimized_meanshift.best_s * 1e3:.1f} ms "
        f"({meanshift_speedup:.2f}x)"
    )

    # ------------------------------------------------------------------
    # Per-stage profile of real federated rounds (context numbers)
    # ------------------------------------------------------------------
    from repro import DataConfig, DefenseConfig, ExperimentConfig, TrainingConfig
    from repro.fl.experiment import run_experiment

    profiler = RoundProfiler()
    run_experiment(
        ExperimentConfig(
            num_clients=15,
            seed=0,
            data=DataConfig(dataset="mnist_like", num_train=300, num_test=100),
            training=TrainingConfig(model="mlp", rounds=5, batch_size=16),
            defense=DefenseConfig(name="signguard"),
        ),
        profiler=profiler,
    )
    profile = profiler.to_dict()
    round_mean_ms = profile["stages"]["round_total"]["mean_s"] * 1e3
    print(f"profiled_round: {profile['num_rounds']} rounds, mean {round_mean_ms:.1f} ms")

    for bench, extra in (
        (seed_pipeline, {}),
        (optimized_pipeline, {"speedup_vs_seed": pipeline_speedup}),
        (seed_krum, {}),
        (optimized_krum, {"speedup_vs_seed": krum_speedup}),
        (seed_bulyan, {}),
        (optimized_bulyan, {"speedup_vs_seed": bulyan_speedup}),
        (seed_meanshift, {}),
        (optimized_meanshift, {"speedup_vs_seed": meanshift_speedup}),
    ):
        bench.extra.update({"n_clients": n_clients, "dim": dim, **extra})
        results.append(bench)

    write_bench_json(
        args.output,
        results,
        metadata={
            "suite": "round_engine",
            "quick": bool(args.quick),
            "n_clients": n_clients,
            "dim": dim,
            "num_byzantine": f,
            "round_profile": profile["stages"],
            "speedups": {
                "signguard_pipeline": pipeline_speedup,
                "krum_scoring_round": krum_speedup,
                "bulyan": bulyan_speedup,
                "meanshift": meanshift_speedup,
            },
        },
    )
    print(f"wrote {args.output}")

    # ------------------------------------------------------------------
    # Regression floors (fail loudly).
    # ------------------------------------------------------------------
    _require(
        pipeline_speedup >= 2.0,
        f"SignGuardPipeline speedup regressed: {pipeline_speedup:.2f}x < 2.0x",
    )
    _require(
        krum_speedup >= 2.0,
        f"round-level Krum scoring speedup regressed: {krum_speedup:.2f}x < 2.0x",
    )
    _require(
        bulyan_speedup >= 2.0,
        f"Bulyan speedup regressed: {bulyan_speedup:.2f}x < 2.0x",
    )
    _require(
        meanshift_speedup >= 1.0,
        f"Mean-Shift regressed below seed: {meanshift_speedup:.2f}x",
    )
    print("all speedup floors met")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SmokeFailure as failure:
        print(f"PERF SMOKE FAILURE: {failure}", file=sys.stderr)
        sys.exit(1)
