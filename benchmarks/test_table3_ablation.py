"""Table III: ablation of SignGuard-Sim's defensive components.

The paper toggles the three components — norm thresholding, sign clustering,
and norm clipping — and evaluates the resulting defense under the Random,
Reverse (sign-flip scaled by r), and LIE attacks.  The finding: no single
component handles every attack, but clustering combined with either
thresholding or clipping does.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from benchmarks.conftest import make_config
from repro.fl import run_experiment

# (thresholding, clustering, norm-clip) combinations from Table III.
COMPONENT_ROWS = (
    (True, False, False),
    (False, True, False),
    (False, False, True),
    (True, True, False),
    (False, True, True),
    (True, True, True),
)
ATTACKS = ("random", "reverse_scaling", "lie")


def _defense_params(thresholding: bool, clustering: bool, clipping: bool) -> dict:
    return {
        "use_norm_threshold": thresholding,
        "use_sign_clustering": clustering,
        "use_norm_clipping": clipping,
    }


def _attack_params(attack: str, thresholding: bool, clipping: bool) -> dict:
    if attack != "reverse_scaling":
        return {}
    # The paper's adaptive scaling: r = R (the norm upper bound) when any
    # norm-based component is active, r = 100 otherwise.
    return {"scale": 3.0 if (thresholding or clipping) else 100.0}


def run_table3(profile) -> Dict[Tuple[bool, bool, bool], Dict[str, float]]:
    results: Dict[Tuple[bool, bool, bool], Dict[str, float]] = {}
    dataset = profile.datasets[0]
    for row in COMPONENT_ROWS:
        thresholding, clustering, clipping = row
        row_result: Dict[str, float] = {}
        for attack in ATTACKS:
            config = make_config(
                profile,
                dataset=dataset,
                attack=attack,
                defense="signguard_sim",
                attack_params=_attack_params(attack, thresholding, clipping),
                defense_params=_defense_params(thresholding, clustering, clipping),
            )
            row_result[attack] = run_experiment(config).best_accuracy()
        results[row] = row_result
    return results


@pytest.mark.benchmark(group="table3")
def test_table3_component_ablation(benchmark, profile):
    results = benchmark.pedantic(run_table3, args=(profile,), rounds=1, iterations=1)

    print("\n=== Table III: SignGuard-Sim component ablation (best accuracy %) ===")
    print(
        f"{'Thresh':>7s}{'Cluster':>9s}{'NormClip':>10s}"
        + "".join(f"{a:>18s}" for a in ATTACKS)
    )
    for (thresholding, clustering, clipping), row in results.items():
        flags = (
            f"{'yes' if thresholding else '-':>7s}"
            f"{'yes' if clustering else '-':>9s}"
            f"{'yes' if clipping else '-':>10s}"
        )
        print(flags + "".join(f"{100 * row[a]:>17.2f}%" for a in ATTACKS))
    benchmark.extra_info["ablation"] = {
        str(row): values for row, values in results.items()
    }

    # Paper shape: the full pipeline (or clustering + one norm component) is at
    # least as robust as the weakest single component on every attack.
    full = results[(True, True, True)]
    for attack in ATTACKS:
        weakest_single = min(
            results[(True, False, False)][attack],
            results[(False, True, False)][attack],
            results[(False, False, True)][attack],
        )
        assert full[attack] >= weakest_single - 0.05
