"""Figure 6: defense comparison on non-IID data for three skew levels.

The paper partitions the data with its s-fraction sort-and-partition scheme
(s in {0.3, 0.5, 0.8}; smaller s means more skew) and evaluates Sign-Flip,
LIE, and ByzMean against TrMean, Multi-Krum, Bulyan, DnC, and SignGuard-Sim.
The expected shape: SignGuard-Sim achieves the best (or tied-best) accuracy
in every cell, and all defenses degrade as the skew grows.
"""

from __future__ import annotations

from typing import Dict

import pytest

from benchmarks.conftest import make_config
from repro.fl import run_experiment

SKEW_LEVELS = (0.3, 0.5, 0.8)
ATTACKS = ("sign_flip", "lie", "byzmean")


def defenses_for(profile):
    if profile.name == "full":
        return ("trimmed_mean", "multi_krum", "bulyan", "dnc", "signguard_sim")
    return ("trimmed_mean", "multi_krum", "signguard_sim")


def run_fig6(profile) -> Dict[str, Dict[str, Dict[float, float]]]:
    dataset = profile.datasets[0]
    results: Dict[str, Dict[str, Dict[float, float]]] = {}
    for defense in defenses_for(profile):
        results[defense] = {}
        for attack in ATTACKS:
            results[defense][attack] = {}
            for skew in SKEW_LEVELS:
                config = make_config(
                    profile,
                    dataset=dataset,
                    attack=attack,
                    defense=defense,
                    partition="sort_and_partition",
                    iid_fraction=skew,
                )
                results[defense][attack][skew] = run_experiment(config).best_accuracy()
    return results


@pytest.mark.benchmark(group="fig6")
def test_fig6_noniid_defense_comparison(benchmark, profile):
    results = benchmark.pedantic(run_fig6, args=(profile,), rounds=1, iterations=1)

    print("\n=== Fig. 6: best accuracy on non-IID data (s = IID fraction) ===")
    for attack in ATTACKS:
        print(f"\n-- attack: {attack} --")
        print(
            f"{'defense':16s}" + "".join(f"{'s=' + str(s):>10s}" for s in SKEW_LEVELS)
        )
        for defense in defenses_for(profile):
            cells = "".join(
                f"{100 * results[defense][attack][s]:>9.1f}%" for s in SKEW_LEVELS
            )
            print(f"{defense:16s}{cells}")
    benchmark.extra_info["accuracy"] = {
        d: {a: {str(s): v for s, v in points.items()} for a, points in attacks.items()}
        for d, attacks in results.items()
    }

    # Paper shape: for every attack and skew level SignGuard-Sim is within a
    # small margin of the best competing defense (usually it IS the best).
    for attack in ATTACKS:
        for skew in SKEW_LEVELS:
            best_other = max(
                results[d][attack][skew]
                for d in defenses_for(profile)
                if d != "signguard_sim"
            )
            assert results["signguard_sim"][attack][skew] >= best_other - 0.15
