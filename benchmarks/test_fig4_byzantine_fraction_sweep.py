"""Figure 4: attack impact vs the percentage of Byzantine clients.

The paper keeps 50 clients and sweeps the Byzantine fraction from 10% to 40%
under the five strongest attacks, comparing Median, TrMean, Multi-Krum, DnC,
and SignGuard-Sim.  Attack impact (Definition 3) is the accuracy drop versus
the undefended no-attack baseline.  The expected shape: baselines' impact
grows sharply with the Byzantine fraction while SignGuard-Sim stays flat.
"""

from __future__ import annotations

from typing import Dict

import pytest

from benchmarks.conftest import make_config, print_series
from repro.fl import run_experiment
from repro.fl.metrics import attack_impact

FRACTIONS = (0.1, 0.2, 0.3, 0.4)


def sweep_attacks_and_defenses(profile):
    if profile.name == "full":
        attacks = ("byzmean", "sign_flip", "lie", "min_max", "min_sum")
        defenses = ("median", "trimmed_mean", "multi_krum", "dnc", "signguard_sim")
    else:
        attacks = ("byzmean", "lie", "sign_flip")
        defenses = ("median", "multi_krum", "signguard_sim")
    return attacks, defenses


def run_fig4(profile) -> Dict[str, Dict[str, Dict[float, float]]]:
    dataset = profile.datasets[0]
    attacks, defenses = sweep_attacks_and_defenses(profile)
    baseline = run_experiment(
        make_config(profile, dataset=dataset, attack="no_attack", defense="mean")
    ).best_accuracy()

    impact: Dict[str, Dict[str, Dict[float, float]]] = {"baseline_accuracy": baseline}
    for defense in defenses:
        impact[defense] = {}
        for attack in attacks:
            impact[defense][attack] = {}
            for fraction in FRACTIONS:
                recorder = run_experiment(
                    make_config(
                        profile,
                        dataset=dataset,
                        attack=attack,
                        defense=defense,
                        byzantine_fraction=fraction,
                    )
                )
                impact[defense][attack][fraction] = attack_impact(
                    baseline, recorder.best_accuracy()
                )
    return impact


@pytest.mark.benchmark(group="fig4")
def test_fig4_byzantine_fraction_sweep(benchmark, profile):
    impact = benchmark.pedantic(run_fig4, args=(profile,), rounds=1, iterations=1)
    baseline = impact.pop("baseline_accuracy")
    attacks, defenses = sweep_attacks_and_defenses(profile)

    print(
        f"\n=== Fig. 4: attack impact vs Byzantine fraction "
        f"(baseline accuracy {100 * baseline:.2f}%) ==="
    )
    for defense in defenses:
        print_series(
            f"{defense}", {a: impact[defense][a] for a in attacks}, x_label="beta"
        )
    benchmark.extra_info["baseline_accuracy"] = baseline
    benchmark.extra_info["impact"] = {
        d: {
            a: {str(k): v for k, v in points.items()}
            for a, points in impact[d].items()
        }
        for d in defenses
    }

    # Paper shape: SignGuard-Sim's worst-case impact across attacks and
    # fractions stays no worse than the weakest baseline's worst case.
    signguard_worst = max(
        impact["signguard_sim"][a][f] for a in attacks for f in FRACTIONS
    )
    baseline_worsts = [
        max(impact[d][a][f] for a in attacks for f in FRACTIONS)
        for d in defenses
        if d != "signguard_sim"
    ]
    assert signguard_worst <= max(baseline_worsts) + 0.05
