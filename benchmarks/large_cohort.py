#!/usr/bin/env python
"""Large-cohort bench tier: n=10,000 robust aggregation without n x n memory.

A 10k-client cohort makes every dense pairwise matrix 10_000 x 10_000
float64 = 800 MB — the allocation this tier proves the defenses no longer
need.  Sections (all floors fail loudly with a non-zero exit):

* ``large_cohort/krum_scoring``      — blocked Krum neighbor-sum scoring via
  :meth:`GradientBatch.k_smallest_neighbor_sums`; a ``tracemalloc`` pass
  enforces the memory floor (traced peak well below the 800 MB dense
  matrix, i.e. no n x n allocation happened).
* ``large_cohort/signguard_features/*`` — the full SignGuard feature
  extraction (sign statistics + pairwise-median euclidean / cosine
  fallbacks) streamed through row-block tiles, same memory floor.
* ``large_cohort/bandwidth/*``       — Mean-Shift bandwidth estimation: the
  seeded subsampled estimator at n=10k, its determinism (two calls, one
  value), and a dense-vs-subsampled speedup floor at a bridge size where
  the dense estimator is still tractable, plus a quantile-agreement check.
* ``large_cohort/dnc/*``             — DnC spectral filtering with
  ``svd="power"`` vs ``svd="full"``: speedup floor plus selection
  agreement (Jaccard) under identical rng streams.

Before any large-n work, the tier asserts the four dense accessors
(``gram`` / ``sq_distances`` / ``distances`` / ``cosine_similarities``)
refuse to materialize at n=10k (:class:`PairwiseMemoryError`), and that the
blocked primitives match the dense caches at a small n where both paths
are tractable.

Run standalone (CI runs ``--check``), or let ``perf_smoke.py`` embed these
rows into ``BENCH_round_engine.json``::

    PYTHONPATH=src python benchmarks/large_cohort.py            # full sizes
    PYTHONPATH=src python benchmarks/large_cohort.py --quick    # CI-sized
    PYTHONPATH=src python benchmarks/large_cohort.py --check    # floors only
"""

from __future__ import annotations

import argparse
import sys
import tracemalloc
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.aggregators.base import ServerContext  # noqa: E402
from repro.aggregators.dnc import DivideAndConquerAggregator  # noqa: E402
from repro.clustering.meanshift import (  # noqa: E402
    BANDWIDTH_MAX_PAIRS,
    estimate_bandwidth,
)
from repro.core.features import extract_features  # noqa: E402
from repro.perf import run_benchmark, speedup, write_bench_json  # noqa: E402
from repro.utils.batch import (  # noqa: E402
    GradientBatch,
    PairwiseMemoryError,
)

LARGE_N = 10_000

# Memory floor: the traced peak of every streamed large-n section must stay
# below this fraction of the dense n x n matrix — proof the blocked
# primitives never materialized it (the matrix alone would blow the floor).
MEMORY_FLOOR_FRACTION = 0.75

# Speedup floors for the subquadratic paths (measured values sit above;
# the floors catch silent fallbacks to the dense implementations).
BANDWIDTH_SPEEDUP_FLOOR = 3.0
DNC_POWER_SPEEDUP_FLOOR = 2.0
DNC_SELECTION_JACCARD_FLOOR = 0.95
BANDWIDTH_RELATIVE_TOLERANCE = 0.1


class LargeCohortFailure(RuntimeError):
    """Raised when a memory floor, speedup floor, or agreement guard fails."""


def _default_require(condition: bool, message: str) -> None:
    if not condition:
        raise LargeCohortFailure(message)


def make_attack_population(
    n_clients: int, dim: int, seed: int = 0
) -> np.ndarray:
    """Honest majority around a signal, 20% sign-inverted malicious cluster.

    The benign/malicious separation gives the population the dominant
    spectral component DnC's power iteration locks onto — the regime the
    defenses are actually deployed in.
    """
    rng = np.random.default_rng(seed)
    signal = rng.normal(0.05, 1.0, size=dim)
    honest = signal[None, :] + rng.normal(
        0, 0.3, size=(n_clients - n_clients // 5, dim)
    )
    malicious = -signal[None, :] + rng.normal(
        0, 0.05, size=(n_clients // 5, dim)
    )
    return np.vstack([honest, malicious])


def make_spectral_population(
    n_clients: int, dim: int, seed: int = 1, rank: int = 8
) -> np.ndarray:
    """Attack population whose honest cohort has low-rank heterogeneity.

    DnC removes its highest scorers along the top singular direction each
    iteration; on :func:`make_attack_population` the first iteration strips
    the malicious cluster and leaves isotropic noise, where the remaining
    removals are spectrally arbitrary (under full SVD and power iteration
    alike).  Geometrically-decaying component scales keep a spectral gap —
    and therefore a well-defined top direction — alive through *every*
    iteration, which is the regime where full-vs-power selection agreement
    is meaningful.
    """
    rng = np.random.default_rng(seed)
    basis, _ = np.linalg.qr(rng.normal(size=(dim, rank)))
    scales = 2.0 ** -np.arange(rank)
    n_malicious = n_clients // 5
    n_honest = n_clients - n_malicious
    weights = rng.normal(size=(n_honest, rank)) * scales
    signal = rng.normal(0.05, 1.0, size=dim)
    honest = (
        signal[None, :]
        + weights @ basis.T
        + rng.normal(0, 0.05, size=(n_honest, dim))
    )
    malicious = -signal[None, :] + rng.normal(0, 0.05, size=(n_malicious, dim))
    return np.vstack([honest, malicious])


def traced_peak_bytes(fn) -> int:
    """Peak traced allocation of one ``fn()`` call (numpy buffers included)."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def check_dense_refusal(batch: GradientBatch, require) -> None:
    """All four dense accessors must refuse above the pairwise threshold."""
    for accessor in ("gram", "sq_distances", "distances", "cosine_similarities"):
        try:
            getattr(batch, accessor)()
        except PairwiseMemoryError:
            continue
        require(
            False,
            f"GradientBatch.{accessor}() materialized an n x n matrix at "
            f"n={batch.n_clients} instead of raising PairwiseMemoryError",
        )


def check_small_n_equivalence(require) -> None:
    """Streamed primitives must match the dense caches where both run.

    A forced-streaming batch (threshold below n) and a dense batch over the
    same matrix must agree on Krum scoring (same selection), the feature
    medians, and the attack-scale maxima.
    """
    small = make_attack_population(512, 32, seed=7)
    dense = GradientBatch(small)
    streamed = GradientBatch(small, max_dense_pairwise=64, block_rows=96)
    num_neighbors = max(512 - 512 // 5 - 2, 1)
    dense_scores = dense.k_smallest_neighbor_sums(num_neighbors)
    streamed_scores = streamed.k_smallest_neighbor_sums(num_neighbors)
    require(
        bool(np.allclose(dense_scores, streamed_scores, rtol=1e-9, atol=1e-9)),
        "streamed Krum neighbor sums diverged from the dense cache at small n",
    )
    require(
        int(np.argmin(dense_scores)) == int(np.argmin(streamed_scores)),
        "streamed Krum scoring selected a different client than dense",
    )
    require(
        bool(
            np.allclose(
                dense.median_distances(),
                streamed.median_distances(),
                rtol=1e-9,
                atol=1e-9,
            )
        ),
        "streamed median distances diverged from the dense cache at small n",
    )
    require(
        bool(
            np.allclose(
                dense.median_cosine_similarities(),
                streamed.median_cosine_similarities(),
                rtol=1e-9,
                atol=1e-9,
            )
        ),
        "streamed median cosines diverged from the dense cache at small n",
    )


def run_large_cohort(*, quick: bool, require=None):
    """Run every large-cohort section; returns ``(results, metadata)``.

    ``require`` lets a host harness (``perf_smoke.py``) substitute its own
    failure type; the default raises :class:`LargeCohortFailure`.
    """
    require = require or _default_require
    n = LARGE_N
    dim = 64 if quick else 256
    repeats = 1 if quick else 2
    # Below ~3k clients the dense estimator's single BLAS matmul still wins
    # over the chunked subsampled gathers; 4k is the smallest bridge where
    # the subquadratic path shows a stable, enforceable margin.
    bridge_n = 4_000
    f = n // 5
    dense_matrix_bytes = n * n * np.dtype(np.float64).itemsize
    memory_floor_bytes = int(MEMORY_FLOOR_FRACTION * dense_matrix_bytes)
    results = []

    print(
        f"large cohort: n={n} dim={dim} repeats={repeats} "
        f"(dense n x n would be {dense_matrix_bytes / 2**30:.2f} GiB; "
        f"memory floor {memory_floor_bytes / 2**20:.0f} MiB)"
    )

    check_small_n_equivalence(require)
    print("small-n equivalence: OK (streamed primitives match dense caches)")

    gradients = make_attack_population(n, dim)
    batch = GradientBatch(gradients)
    check_dense_refusal(batch, require)
    print("dense refusal: OK (all four dense accessors raise at n=10k)")

    # ------------------------------------------------------------------
    # Blocked Krum scoring
    # ------------------------------------------------------------------
    num_neighbors = max(n - f - 2, 1)
    krum_bench = run_benchmark(
        lambda: batch.k_smallest_neighbor_sums(num_neighbors),
        name="large_cohort/krum_scoring",
        repeats=repeats,
        warmup=0,
    )
    krum_peak = traced_peak_bytes(
        lambda: batch.k_smallest_neighbor_sums(num_neighbors)
    )
    require(
        krum_peak < memory_floor_bytes,
        f"blocked Krum scoring traced {krum_peak / 2**20:.0f} MiB peak, "
        f"above the {memory_floor_bytes / 2**20:.0f} MiB no-dense-matrix "
        "floor",
    )
    krum_bench.extra.update({"peak_traced_bytes": krum_peak})
    results.append(krum_bench)
    print(
        f"krum_scoring: {krum_bench.best_s:.2f} s, traced peak "
        f"{krum_peak / 2**20:.0f} MiB (floor "
        f"{memory_floor_bytes / 2**20:.0f} MiB)"
    )

    # ------------------------------------------------------------------
    # SignGuard feature extraction (streamed pairwise-median fallbacks)
    # ------------------------------------------------------------------
    feature_benches = {}
    feature_peaks = {}
    for similarity in ("euclidean", "cosine"):
        feature_benches[similarity] = run_benchmark(
            lambda sim=similarity: extract_features(
                batch, similarity=sim, rng=np.random.default_rng(3)
            ),
            name=f"large_cohort/signguard_features/{similarity}",
            repeats=repeats,
            warmup=0,
        )
        feature_peaks[similarity] = traced_peak_bytes(
            lambda sim=similarity: extract_features(
                batch, similarity=sim, rng=np.random.default_rng(3)
            )
        )
        require(
            feature_peaks[similarity] < memory_floor_bytes,
            f"streamed SignGuard features ({similarity}) traced "
            f"{feature_peaks[similarity] / 2**20:.0f} MiB peak, above the "
            f"{memory_floor_bytes / 2**20:.0f} MiB no-dense-matrix floor",
        )
        feature_benches[similarity].extra.update(
            {"peak_traced_bytes": feature_peaks[similarity]}
        )
        results.append(feature_benches[similarity])
        print(
            f"signguard_features/{similarity}: "
            f"{feature_benches[similarity].best_s:.2f} s, traced peak "
            f"{feature_peaks[similarity] / 2**20:.0f} MiB"
        )

    # ------------------------------------------------------------------
    # Mean-Shift bandwidth: subsampled at n=10k, speedup floor at a bridge
    # size where the dense estimator is still tractable
    # ------------------------------------------------------------------
    bandwidth_large = run_benchmark(
        lambda: estimate_bandwidth(gradients, quantile=0.3),
        name="large_cohort/bandwidth/subsampled",
        repeats=repeats,
        warmup=0,
    )
    first = estimate_bandwidth(gradients, quantile=0.3)
    second = estimate_bandwidth(gradients, quantile=0.3)
    require(
        first == second,
        "subsampled bandwidth is not deterministic across repeated calls: "
        f"{first!r} != {second!r}",
    )
    bridge = gradients[:bridge_n]
    dense_bandwidth_bench = run_benchmark(
        lambda: estimate_bandwidth(bridge, quantile=0.3),
        name=f"large_cohort/bandwidth/dense_n{bridge_n}",
        repeats=repeats,
        warmup=0,
    )
    subsampled_bandwidth_bench = run_benchmark(
        lambda: estimate_bandwidth(
            bridge, quantile=0.3, max_pairs=BANDWIDTH_MAX_PAIRS
        ),
        name=f"large_cohort/bandwidth/subsampled_n{bridge_n}",
        repeats=repeats,
        warmup=0,
    )
    bandwidth_speedup = speedup(
        dense_bandwidth_bench, subsampled_bandwidth_bench
    )
    require(
        bandwidth_speedup >= BANDWIDTH_SPEEDUP_FLOOR,
        f"subsampled bandwidth speedup regressed: {bandwidth_speedup:.2f}x "
        f"< {BANDWIDTH_SPEEDUP_FLOOR:.1f}x at n={bridge_n}",
    )
    dense_value = estimate_bandwidth(bridge, quantile=0.3)
    subsampled_value = estimate_bandwidth(
        bridge, quantile=0.3, max_pairs=BANDWIDTH_MAX_PAIRS
    )
    require(
        abs(subsampled_value - dense_value)
        <= BANDWIDTH_RELATIVE_TOLERANCE * dense_value,
        "subsampled bandwidth diverged from the dense estimate at "
        f"n={bridge_n}: {subsampled_value:.4f} vs {dense_value:.4f}",
    )
    subsampled_bandwidth_bench.extra.update(
        {
            "speedup_vs_dense": bandwidth_speedup,
            "bandwidth_subsampled": subsampled_value,
            "bandwidth_dense": dense_value,
        }
    )
    results.extend(
        [bandwidth_large, dense_bandwidth_bench, subsampled_bandwidth_bench]
    )
    print(
        f"bandwidth: n={n} subsampled {bandwidth_large.best_s * 1e3:.0f} ms; "
        f"bridge n={bridge_n} dense {dense_bandwidth_bench.best_s:.2f} s -> "
        f"subsampled {subsampled_bandwidth_bench.best_s * 1e3:.0f} ms "
        f"({bandwidth_speedup:.1f}x, quantile {subsampled_value:.3f} vs "
        f"dense {dense_value:.3f})"
    )

    # ------------------------------------------------------------------
    # DnC: power iteration vs full SVD
    # ------------------------------------------------------------------
    # DnC's spectral cost scales with its coordinate-subsample width, so
    # the comparison runs at the aggregator's native subsample_dim on a
    # population whose spectral gap survives every removal iteration (see
    # make_spectral_population) — at dim far below subsample_dim the shared
    # sampling/centering overhead hides the SVD cost entirely.
    dnc_dim = 512
    dnc_gradients = make_spectral_population(n, dnc_dim)
    dnc_full = DivideAndConquerAggregator(num_byzantine=f, svd="full")
    dnc_power = DivideAndConquerAggregator(num_byzantine=f, svd="power")
    dnc_full_bench = run_benchmark(
        lambda: dnc_full(dnc_gradients, ServerContext.make(rng=0)),
        name="large_cohort/dnc/full",
        repeats=repeats,
        warmup=0,
    )
    dnc_power_bench = run_benchmark(
        lambda: dnc_power(dnc_gradients, ServerContext.make(rng=0)),
        name="large_cohort/dnc/power",
        repeats=repeats,
        warmup=0,
    )
    dnc_speedup = speedup(dnc_full_bench, dnc_power_bench)
    require(
        dnc_speedup >= DNC_POWER_SPEEDUP_FLOOR,
        f"DnC power-iteration speedup regressed: {dnc_speedup:.2f}x "
        f"< {DNC_POWER_SPEEDUP_FLOOR:.1f}x at n={n}",
    )
    selected_full = dnc_full(
        dnc_gradients, ServerContext.make(rng=0)
    ).selected_indices
    selected_power = dnc_power(
        dnc_gradients, ServerContext.make(rng=0)
    ).selected_indices
    jaccard = len(np.intersect1d(selected_full, selected_power)) / len(
        np.union1d(selected_full, selected_power)
    )
    require(
        jaccard >= DNC_SELECTION_JACCARD_FLOOR,
        "DnC power-iteration selection diverged from full SVD: Jaccard "
        f"{jaccard:.3f} < {DNC_SELECTION_JACCARD_FLOOR:.2f} under identical "
        "rng streams",
    )
    dnc_full_bench.extra.update({"dim": dnc_dim})
    dnc_power_bench.extra.update(
        {
            "dim": dnc_dim,
            "speedup_vs_full_svd": dnc_speedup,
            "selection_jaccard": jaccard,
        }
    )
    results.extend([dnc_full_bench, dnc_power_bench])
    print(
        f"dnc: full {dnc_full_bench.best_s:.2f} s -> power "
        f"{dnc_power_bench.best_s * 1e3:.0f} ms ({dnc_speedup:.1f}x, "
        f"selection Jaccard {jaccard:.3f})"
    )

    for bench in results:
        bench.extra.setdefault("n_clients", n)
        bench.extra.setdefault("dim", dim)

    metadata = {
        "n_clients": n,
        "dim": dim,
        "dnc_dim": dnc_dim,
        "num_byzantine": f,
        "bridge_n": bridge_n,
        "dense_matrix_bytes": dense_matrix_bytes,
        "memory_floor_bytes": memory_floor_bytes,
        "traced_peak_bytes": {
            "krum_scoring": krum_peak,
            "signguard_features_euclidean": feature_peaks["euclidean"],
            "signguard_features_cosine": feature_peaks["cosine"],
        },
        "speedups": {
            "bandwidth_subsampled_vs_dense": bandwidth_speedup,
            "dnc_power_vs_full_svd": dnc_speedup,
        },
        "dnc_selection_jaccard": jaccard,
        "bandwidth": {
            "max_pairs": BANDWIDTH_MAX_PAIRS,
            "dense_quantile_value": dense_value,
            "subsampled_quantile_value": subsampled_value,
            "deterministic": True,
        },
    }
    print("large cohort: all memory and speedup floors met")
    return results, metadata


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=(
            "optionally write a standalone JSON (the checked-in rows live "
            "in BENCH_round_engine.json via perf_smoke.py)"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller dim / repeats / bridge size (CI smoke)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: run at --quick sizes, enforce floors, never write",
    )
    args = parser.parse_args(argv)
    if args.check:
        args.quick = True
    results, metadata = run_large_cohort(quick=args.quick)
    if args.output is not None and not args.check:
        write_bench_json(
            args.output,
            results,
            metadata={"suite": "large_cohort", **metadata},
        )
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except LargeCohortFailure as failure:
        print(f"LARGE COHORT FAILURE: {failure}", file=sys.stderr)
        sys.exit(1)
