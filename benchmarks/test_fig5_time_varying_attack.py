"""Figure 5: test-accuracy curves under the time-varying attack strategy.

The attacker switches its attack randomly every epoch (including rounds with
no attack at all).  The paper compares Multi-Krum, Bulyan, DnC, and SignGuard
against the no-attack / no-defense baseline curve: the baselines fluctuate or
collapse, SignGuard tracks the baseline closely.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from benchmarks.conftest import make_config
from repro.fl import run_experiment

DEFENSES = ("multi_krum", "bulyan", "dnc", "signguard")


def run_fig5(profile) -> Dict[str, List[float]]:
    dataset = profile.datasets[0]
    curves: Dict[str, List[float]] = {}
    baseline_config = make_config(
        profile, dataset=dataset, attack="no_attack", defense="mean"
    )
    curves["baseline"] = run_experiment(baseline_config).accuracies
    for defense in DEFENSES:
        config = make_config(
            profile, dataset=dataset, attack="time_varying", defense=defense
        )
        curves[defense] = run_experiment(config).accuracies
    return curves


@pytest.mark.benchmark(group="fig5")
def test_fig5_time_varying_attack(benchmark, profile):
    curves = benchmark.pedantic(run_fig5, args=(profile,), rounds=1, iterations=1)

    print("\n=== Fig. 5: accuracy curves under the time-varying attack ===")
    for name, curve in curves.items():
        rendered = " ".join(f"{100 * value:5.1f}" for value in curve)
        print(f"{name:12s} {rendered}")
    benchmark.extra_info["curves"] = curves

    # Paper shape: SignGuard's final accuracy stays close to the baseline and
    # is not the worst among the compared defenses.
    baseline_final = curves["baseline"][-1]
    signguard_final = curves["signguard"][-1]
    other_finals = [curves[d][-1] for d in DEFENSES if d != "signguard"]
    assert signguard_final >= baseline_final - 0.25
    assert signguard_final >= min(other_finals) - 0.05
