"""Figure 2: sign statistics of honest vs LIE-crafted gradients over training.

The paper trains the global model under *no attack* and tracks, for every
iteration, the proportions of positive / zero / negative elements of (a) the
averaged honest gradient and (b) a virtual gradient crafted with the LIE rule
(Eq. 1).  The honest trace stays roughly balanced (positive slightly ahead),
while the crafted trace collapses towards the negative side — the empirical
basis of SignGuard's sign features.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import make_config
from repro.aggregators import MeanAggregator
from repro.analysis import SignStatisticsTrace
from repro.attacks import NoAttack
from repro.data import build_dataset, partition_dataset
from repro.fl.server import FederatedServer
from repro.fl import FederatedSimulation, build_clients
from repro.nn.models import build_model
from repro.utils.rng import RngFactory


class _TracingSimulation(FederatedSimulation):
    """A simulation that records the Fig. 2 sign statistics every round."""

    def __init__(self, *args, trace: SignStatisticsTrace, **kwargs):
        super().__init__(*args, **kwargs)
        self.trace = trace

    def _collect_honest_gradients(self, plan):
        gradients, plan, stats = super()._collect_honest_gradients(plan)
        self.trace.record(gradients)
        return gradients, plan, stats


def run_fig2(profile) -> SignStatisticsTrace:
    config = make_config(profile, attack="no_attack", defense="mean")
    rng_factory = RngFactory(config.seed)
    split = build_dataset(
        config.data.dataset,
        num_train=config.data.num_train,
        num_test=config.data.num_test,
        rng=rng_factory.make("data"),
    )
    partitions = partition_dataset(
        split.train, config.num_clients, scheme="iid", rng=rng_factory.make("partition")
    )
    clients = build_clients(
        split.train,
        partitions,
        byzantine_indices=[],
        batch_size=config.training.batch_size,
        rng_factory=rng_factory,
    )
    model = build_model(
        config.training.model, split.spec, rng=rng_factory.make("model")
    )
    server = FederatedServer(
        model,
        MeanAggregator(),
        learning_rate=config.training.learning_rate,
        rng=rng_factory.make("server"),
    )
    trace = SignStatisticsTrace(z=0.3)
    simulation = _TracingSimulation(
        server,
        clients,
        NoAttack(),
        split.test,
        trace=trace,
        eval_every=config.training.eval_every,
    )
    simulation.run(config.training.rounds)
    return trace


@pytest.mark.benchmark(group="fig2")
def test_fig2_sign_statistics(benchmark, profile):
    trace = benchmark.pedantic(run_fig2, args=(profile,), rounds=1, iterations=1)
    summary = trace.summary()

    print("\n=== Fig. 2: mean sign statistics over training (z = 0.3) ===")
    print(f"{'trace':12s}{'positive':>12s}{'zero':>12s}{'negative':>12s}")
    for which in ("honest", "malicious"):
        print(
            f"{which:12s}"
            f"{summary[f'{which}_positive']:>12.3f}"
            f"{summary[f'{which}_zero']:>12.3f}"
            f"{summary[f'{which}_negative']:>12.3f}"
        )
    benchmark.extra_info.update(summary)

    # Paper shape: the LIE-crafted gradient has a visibly larger negative
    # fraction than the honest average, and the honest average leans positive.
    assert summary["malicious_negative"] > summary["honest_negative"]
    assert summary["honest_positive"] >= summary["honest_negative"] - 0.05
