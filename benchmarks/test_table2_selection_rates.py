"""Table II: selected rate of honest (H) and malicious (M) gradients.

For each SignGuard variant and each of five attacks, the paper reports the
average fraction of honest gradients kept and malicious gradients kept by the
filter over the whole training run.  The qualitative shape: M is ~0 for the
stealthy attacks (ByzMean, LIE, Min-Max, Min-Sum); sign-flip is the hard case
where plain SignGuard admits a noticeable fraction of malicious gradients and
the similarity variants admit fewer.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from benchmarks.conftest import make_config
from repro.fl import run_experiment

ATTACKS = ("byzmean", "sign_flip", "lie", "min_max", "min_sum")
VARIANTS = ("signguard", "signguard_sim", "signguard_dist")


def run_table2(profile) -> Dict[Tuple[str, str], Dict[str, float]]:
    results: Dict[Tuple[str, str], Dict[str, float]] = {}
    dataset = (
        profile.datasets[-1] if "cifar_like" not in profile.datasets else "cifar_like"
    )
    for attack in ATTACKS:
        for variant in VARIANTS:
            config = make_config(
                profile, dataset=dataset, attack=attack, defense=variant
            )
            recorder = run_experiment(config)
            results[(attack, variant)] = {
                "H": recorder.mean_benign_selection_rate(),
                "M": recorder.mean_byzantine_selection_rate(),
                "accuracy": recorder.best_accuracy(),
            }
    return results


@pytest.mark.benchmark(group="table2")
def test_table2_selection_rates(benchmark, profile):
    results = benchmark.pedantic(run_table2, args=(profile,), rounds=1, iterations=1)

    print("\n=== Table II: selected rate of honest (H) and malicious (M) gradients ===")
    header = f"{'Attack':12s}" + "".join(
        f"{v + ' H':>16s}{v + ' M':>16s}" for v in VARIANTS
    )
    print(header)
    for attack in ATTACKS:
        cells = ""
        for variant in VARIANTS:
            entry = results[(attack, variant)]
            cells += f"{entry['H']:>16.4f}{entry['M']:>16.4f}"
        print(f"{attack:12s}{cells}")
    benchmark.extra_info["selection_rates"] = {
        f"{attack}|{variant}": value for (attack, variant), value in results.items()
    }

    # Paper shape: stealthy attacks are excluded almost completely while most
    # honest gradients are kept.
    for attack in ("byzmean", "lie", "min_max", "min_sum"):
        for variant in VARIANTS:
            assert results[(attack, variant)]["M"] < 0.35
            assert results[(attack, variant)]["H"] > 0.5
