"""Section III / Proposition 1: stealthiness of the LIE attack, empirically.

Not a numbered table in the paper, but the analysis that motivates SignGuard:
for gradients collected from a real federated round, the LIE-crafted gradient
is (a) closer to the averaged gradient than some honest gradients, (b) more
cosine-similar than some honest gradients, yet (c) clearly separated in sign
statistics.  This benchmark regenerates those three quantities.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import make_config
from repro.analysis import lie_stealthiness_report
from repro.core.features import sign_statistics
from repro.data import build_dataset, partition_dataset
from repro.fl import build_clients
from repro.nn.models import build_model
from repro.utils.rng import RngFactory


def collect_honest_gradients(profile) -> np.ndarray:
    """One round of honest gradients at the initial global model."""
    config = make_config(profile)
    rng_factory = RngFactory(config.seed)
    split = build_dataset(
        config.data.dataset,
        num_train=config.data.num_train,
        num_test=config.data.num_test,
        rng=rng_factory.make("data"),
    )
    partitions = partition_dataset(
        split.train, config.num_clients, scheme="iid", rng=rng_factory.make("partition")
    )
    clients = build_clients(
        split.train,
        partitions,
        byzantine_indices=[],
        batch_size=config.training.batch_size,
        rng_factory=rng_factory,
    )
    model = build_model(
        config.training.model, split.spec, rng=rng_factory.make("model")
    )
    return np.vstack([client.compute_gradient(model) for client in clients])


@pytest.mark.benchmark(group="prop1")
def test_prop1_lie_stealthiness(benchmark, profile):
    gradients = benchmark.pedantic(
        collect_honest_gradients, args=(profile,), rounds=1, iterations=1
    )
    report = lie_stealthiness_report(gradients, z=0.3)

    mean = gradients.mean(axis=0)
    crafted = mean - 0.3 * gradients.std(axis=0)
    honest_stats = sign_statistics(np.atleast_2d(mean))[0]
    crafted_stats = sign_statistics(np.atleast_2d(crafted))[0]

    print(
        "\n=== Proposition 1: LIE stealthiness on real federated gradients "
        "(z = 0.3) ==="
    )
    print(f"malicious distance to mean      : {report.malicious_distance:.4f}")
    print(
        f"honest distance range           : "
        f"[{report.honest_distances.min():.4f}, {report.honest_distances.max():.4f}]"
    )
    print(f"fraction of honest farther away : {report.closer_than_fraction:.2f}")
    print(f"malicious cosine to mean        : {report.malicious_cosine:.4f}")
    print(f"fraction of honest less similar : {report.more_similar_than_fraction:.2f}")
    print(f"sign disagreement with mean     : {report.sign_disagreement:.3f}")
    print(f"honest sign stats (pos/zero/neg): {honest_stats.round(3)}")
    print(f"LIE sign stats (pos/zero/neg)   : {crafted_stats.round(3)}")
    benchmark.extra_info.update(
        {
            "closer_than_fraction": report.closer_than_fraction,
            "more_similar_than_fraction": report.more_similar_than_fraction,
            "sign_disagreement": report.sign_disagreement,
        }
    )

    # Eq. (6) and (7): the crafted gradient hides inside the honest population
    # by distance and by cosine similarity...
    assert report.satisfies_distance_claim
    assert report.satisfies_cosine_claim
    # ...but shifts the sign distribution, which is what SignGuard detects.
    assert crafted_stats[2] > honest_stats[2]
