"""Table I: best test accuracy for every attack x defense pair (IID setting).

The paper's main table: for each dataset, 9 attacks (including No Attack) are
run against 10 aggregation rules and the best test accuracy over training is
reported.  The headline qualitative claims this harness re-checks:

* Mean collapses under strong attacks (ByzMean in particular).
* LIE / Min-Max / Min-Sum circumvent the median- and distance-based defenses
  (Median, TrMean, Multi-Krum, Bulyan).
* The SignGuard variants stay close to the no-attack benchmark under every
  attack.
"""

from __future__ import annotations

from typing import Dict

import pytest

from benchmarks.conftest import make_config, print_accuracy_matrix
from repro.fl import run_experiment


def run_table1(profile, dataset: str) -> Dict[str, Dict[str, float]]:
    results: Dict[str, Dict[str, float]] = {}
    for defense in profile.defenses:
        row: Dict[str, float] = {}
        for attack in profile.attacks:
            config = make_config(
                profile, dataset=dataset, attack=attack, defense=defense
            )
            row[attack] = run_experiment(config).best_accuracy()
        results[defense] = row
    return results


@pytest.mark.benchmark(group="table1")
def test_table1_iid_defense_comparison(benchmark, profile):
    dataset = profile.datasets[0]
    results = benchmark.pedantic(
        run_table1, args=(profile, dataset), rounds=1, iterations=1
    )
    print_accuracy_matrix(f"Table I ({dataset}, IID, 20% Byzantine)", results)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["accuracy"] = results

    baseline = results["mean"]["no_attack"]
    signguard_worst = min(results["signguard"].values())
    signguard_sim_worst = min(results["signguard_sim"].values())

    # SignGuard's worst-case accuracy across attacks stays within a modest gap
    # of the undefended no-attack benchmark (the paper's Fidelity+Robustness
    # claim); the undefended mean's worst case is far below it.
    mean_worst = min(results["mean"][a] for a in results["mean"] if a != "no_attack")
    assert signguard_worst >= mean_worst - 0.02
    assert max(signguard_worst, signguard_sim_worst) > baseline - 0.25


@pytest.mark.benchmark(group="table1")
def test_table1_remaining_datasets_full_profile_only(benchmark, profile):
    """In the full profile, regenerate Table I for the remaining datasets too."""
    if len(profile.datasets) == 1:
        pytest.skip(
            "quick profile covers a single dataset; set REPRO_BENCH_PROFILE=full"
        )

    def run_rest():
        return {
            dataset: run_table1(profile, dataset) for dataset in profile.datasets[1:]
        }

    all_results = benchmark.pedantic(run_rest, rounds=1, iterations=1)
    for dataset, results in all_results.items():
        print_accuracy_matrix(f"Table I ({dataset}, IID, 20% Byzantine)", results)
    benchmark.extra_info["accuracy"] = all_results
