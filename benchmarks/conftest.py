"""Shared configuration for the benchmark harness.

Every module in this directory regenerates one table or figure of the paper.
Because a faithful full-scale rerun (50 clients x 60-160 epochs x 4 datasets)
takes hours on a laptop, the harness has two profiles:

* ``quick`` (default) — reduced grids, the fast MLP stand-in model, and short
  round budgets.  The structure of every table/figure (rows, columns, series)
  is identical to the paper; absolute numbers are compressed.
* ``full`` — the paper-style models (SimpleCNN / ResNetLite / TextRNN), all
  attacks and defenses, and longer training.  Select it with
  ``REPRO_BENCH_PROFILE=full pytest benchmarks/ --benchmark-only -s``.

Each benchmark prints its table/figure in the same row/series layout as the
paper and stores the numbers in ``benchmark.extra_info`` so they can be
post-processed from the pytest-benchmark JSON output.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Sequence

import pytest

from repro import (
    AttackConfig,
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    TrainingConfig,
)


@dataclass(frozen=True)
class BenchProfile:
    """Experiment sizing for one benchmark profile."""

    name: str
    num_clients: int
    num_train: int
    num_test: int
    rounds: int
    batch_size: int
    eval_every: int
    model_by_dataset: Dict[str, str]
    learning_rate_by_model: Dict[str, float]
    datasets: Sequence[str]
    attacks: Sequence[str]
    defenses: Sequence[str]

    def model_for(self, dataset: str) -> str:
        return self.model_by_dataset.get(dataset, "mlp")

    def learning_rate_for(self, model: str) -> float:
        return self.learning_rate_by_model.get(model, 0.1)


QUICK_PROFILE = BenchProfile(
    name="quick",
    num_clients=15,
    num_train=600,
    num_test=200,
    rounds=12,
    batch_size=16,
    eval_every=3,
    model_by_dataset={
        "mnist_like": "mlp",
        "fashion_like": "mlp",
        "cifar_like": "mlp",
        "agnews_like": "textrnn",
    },
    learning_rate_by_model={
        "mlp": 0.1,
        "textrnn": 0.5,
        "simple_cnn": 0.05,
        "resnet_lite": 0.05,
    },
    datasets=("mnist_like",),
    attacks=("no_attack", "byzmean", "sign_flip", "lie", "min_max", "min_sum"),
    defenses=(
        "mean",
        "median",
        "trimmed_mean",
        "multi_krum",
        "dnc",
        "signguard",
        "signguard_sim",
    ),
)

FULL_PROFILE = BenchProfile(
    name="full",
    num_clients=50,
    num_train=2000,
    num_test=500,
    rounds=40,
    batch_size=32,
    eval_every=4,
    model_by_dataset={
        "mnist_like": "simple_cnn",
        "fashion_like": "simple_cnn",
        "cifar_like": "resnet_lite",
        "agnews_like": "textrnn",
    },
    learning_rate_by_model={
        "mlp": 0.1,
        "textrnn": 0.5,
        "simple_cnn": 0.05,
        "resnet_lite": 0.05,
    },
    datasets=("mnist_like", "fashion_like", "cifar_like", "agnews_like"),
    attacks=(
        "no_attack",
        "random",
        "noise",
        "label_flip",
        "byzmean",
        "sign_flip",
        "lie",
        "min_max",
        "min_sum",
    ),
    defenses=(
        "mean",
        "trimmed_mean",
        "median",
        "geomed",
        "multi_krum",
        "bulyan",
        "dnc",
        "signguard",
        "signguard_sim",
        "signguard_dist",
    ),
)


@pytest.fixture(scope="session")
def profile() -> BenchProfile:
    """The active benchmark profile (quick unless REPRO_BENCH_PROFILE=full)."""
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick").lower()
    return FULL_PROFILE if name == "full" else QUICK_PROFILE


def make_config(
    profile: BenchProfile,
    *,
    dataset: str = "mnist_like",
    attack: str = "no_attack",
    defense: str = "mean",
    byzantine_fraction: float = 0.2,
    partition: str = "iid",
    iid_fraction: float = 1.0,
    attack_params: dict = None,
    defense_params: dict = None,
    rounds: int = None,
    seed: int = 42,
) -> ExperimentConfig:
    """Build an experiment config sized for the active benchmark profile."""
    model = profile.model_for(dataset)
    return ExperimentConfig(
        num_clients=profile.num_clients,
        seed=seed,
        data=DataConfig(
            dataset=dataset,
            num_train=profile.num_train,
            num_test=profile.num_test,
            partition=partition,
            iid_fraction=iid_fraction,
        ),
        training=TrainingConfig(
            model=model,
            rounds=rounds if rounds is not None else profile.rounds,
            batch_size=profile.batch_size,
            learning_rate=profile.learning_rate_for(model),
            eval_every=profile.eval_every,
        ),
        attack=AttackConfig(
            name=attack,
            byzantine_fraction=byzantine_fraction,
            params=dict(attack_params or {}),
        ),
        defense=DefenseConfig(name=defense, params=dict(defense_params or {})),
    ).validate()


def print_accuracy_matrix(title: str, rows: Dict[str, Dict[str, float]]) -> None:
    """Print a defense x attack accuracy matrix in the paper's Table I layout."""
    attacks: List[str] = sorted({a for row in rows.values() for a in row})
    print(f"\n=== {title} ===")
    header = f"{'GAR':18s}" + "".join(f"{a:>12s}" for a in attacks)
    print(header)
    for defense, row in rows.items():
        cells = "".join(f"{100 * row.get(a, float('nan')):>11.2f}%" for a in attacks)
        print(f"{defense:18s}{cells}")


def print_series(title: str, series: Dict[str, Dict], x_label: str) -> None:
    """Print one line per series (a figure's curves) as x -> value pairs."""
    print(f"\n=== {title} ===")
    for name, points in series.items():
        rendered = ", ".join(
            f"{x_label}={x}: {value:.3f}" for x, value in points.items()
        )
        print(f"{name:24s} {rendered}")
